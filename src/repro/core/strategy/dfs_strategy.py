"""Bounded exhaustive depth-first search over the choice tree.

Each nondeterministic decision (scheduling, boolean, integer) is a node in a
choice tree.  The DFS strategy enumerates that tree systematically, one branch
per iteration, so that small harnesses can be explored *exhaustively* rather
than probabilistically.  The search is bounded by the engine's ``max_steps``
and by the iteration budget; :attr:`DFSStrategy.exhausted` reports whether the
full tree was covered.

Stateful search
---------------

With ``stateful=True`` (``TestingConfig.stateful``) the search additionally
prunes schedules that revisit an already fully-explored *global state*: at
each scheduling point the strategy reads the runtime's execution fingerprint
(:mod:`repro.core.fingerprint`) and, when that exact fingerprint was
previously explored with at least as many remaining steps, collapses the
choice point to a single forced branch instead of fanning out over every
enabled machine.  Different schedule prefixes routinely *commute* into the
same global state, so this removes whole families of redundant schedules
while still visiting every distinct bounded behaviour.

Soundness discipline:

* **Post-order recording.**  A fingerprint enters the visited set only when
  its choice point pops off the DFS stack as exhausted (every branch below
  it fully explored) — never when it is first reached — so a state can
  never suppress the exploration of its own subtree.
* **Remaining-steps guard.**  The visited set stores the number of steps
  that remained below the bound when the state was explored; a revisit is
  pruned only when it has *at most* that many steps remaining, so a revisit
  closer to the root (which could reach deeper behaviours) still fans out.
* **Exactness.**  Only fingerprints the tracker reports as *exact* (no
  paused coroutine, no unencodable value anywhere) participate; anything
  else degrades to plain DFS at that node.
* **Forced nodes occupy a stack slot.**  A pruned node records a one-option
  choice point, so replayed prefixes stay aligned across iterations; when a
  previously-branching node becomes forced in a later iteration (the
  visited set grew), the existing option-count-mismatch restart abandons
  that subtree — deliberately, because it is provably covered.

Subtree claims (parallel search)
--------------------------------

The parallel driver (:mod:`repro.core.parallel`) partitions the choice tree
by decision prefix.  :meth:`DFSStrategy.set_claim` pre-seeds the stack with
*frozen* choice points — decisions the search replays on every iteration but
never bumps — so the strategy exhausts exactly the subtree rooted at that
prefix: the advance loop stops popping at the frozen boundary, and an empty
non-frozen suffix means the claim (not the whole space) is exhausted.
:meth:`DFSStrategy.export_frontier` splits the unexplored remainder of a
claim into disjoint sub-claims (the current path plus every unvisited right
sibling along it), which is what makes dynamic work stealing possible.

Cross-process dedupe composes through :meth:`DFSStrategy.seed_visited` (merge
another worker's visited entries in) and :attr:`DFSStrategy.visited_delta`
(the novel entries this search recorded, for gossip back out).  When a
*frozen* node's state turns out covered by a seeded entry, the entire claim
is provably redundant — some other worker fully explored this state with at
least as many steps remaining — so the strategy raises
:attr:`DFSStrategy.claim_covered` and walks the remaining executions out
through forced branches; the driver abandons the claim.

This strategy is an extension beyond the paper's evaluation (which used the
random and priority-based schedulers) and is used by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..fingerprint import merge_visited
from ..ids import MachineId
from .base import SchedulingStrategy
from .registry import register_strategy


@dataclass
class _ChoicePoint:
    num_options: int
    index: int
    #: ``(fingerprint, remaining steps)`` of the global state at this node,
    #: captured when the node was created; ``None`` for value choices,
    #: forced nodes and inexact states.  Recorded into the visited set when
    #: the node pops as exhausted.
    state: Optional[Tuple[int, int]] = None
    #: claim-prefix decisions are replayed every iteration but never bumped
    #: or popped; their subtree (beyond the claimed branch) belongs to other
    #: claims, so their state is never recorded either.
    frozen: bool = False


@register_strategy("dfs")
class DFSStrategy(SchedulingStrategy):
    """Systematic enumeration of every bounded schedule."""

    name = "dfs"
    supports_claims = True

    def __init__(self, seed: int = 0, stateful: bool = False) -> None:
        super().__init__(seed)
        self._stack: List[_ChoicePoint] = []
        self._depth = 0
        self.exhausted = False
        self._stateful = stateful
        self._runtime = None
        self._max_steps = 0
        #: fingerprint -> most remaining steps it has been fully explored
        #: with; persists across iterations (the whole point).
        self._visited: Dict[int, int] = {}
        #: entries recorded (or improved) by *this* search, as opposed to
        #: ones merged in through :meth:`seed_visited`; the parallel driver
        #: gossips these to other workers.
        self.visited_delta: Dict[int, int] = {}
        #: schedules that hit at least one covered state (observability)
        self.pruned_schedules = 0
        self._pruned_this_iteration = False
        #: number of frozen claim-prefix decisions at the bottom of the stack
        self._frozen_depth = 0
        #: set when a frozen decision's state is covered by a (seeded)
        #: visited entry: the whole claim is provably redundant, remaining
        #: executions walk out through forced branches, and
        #: ``prepare_iteration`` reports the claim exhausted.
        self.claim_covered = False

    @property
    def wants_fingerprints(self) -> bool:
        """Stateful search needs the runtime to maintain fingerprints."""
        return self._stateful

    @classmethod
    def from_config(cls, config, options: Optional[Mapping] = None) -> "DFSStrategy":
        options = dict(options or {})
        stateful = bool(options.get("stateful", getattr(config, "stateful", False)))
        return cls(seed=config.seed, stateful=stateful)

    def attach_runtime(self, runtime) -> None:
        self._runtime = runtime
        self._max_steps = runtime.config.max_steps

    # ------------------------------------------------------------------
    # subtree claims (parallel search)
    # ------------------------------------------------------------------
    def set_claim(self, path: Sequence[Tuple[int, int]]) -> None:
        """Restrict the search to the subtree rooted at a decision prefix.

        ``path`` is a sequence of ``(num_options, index)`` pairs from the
        root of the choice tree.  Must be called before the first iteration;
        the prefix decisions are replayed on every execution and never
        advanced, so :attr:`exhausted` now means "this subtree is done".
        """
        if self._stack:
            raise ValueError("set_claim must be called before the search starts")
        for num_options, index in path:
            if not 0 <= index < num_options:
                raise ValueError(f"invalid claim decision ({num_options}, {index})")
            self._stack.append(_ChoicePoint(num_options, index, frozen=True))
        self._frozen_depth = len(self._stack)

    def seed_visited(self, entries: Mapping[int, int]) -> None:
        """Merge another search's visited entries (max remaining steps wins).

        Seeded entries do not enter :attr:`visited_delta`: the delta carries
        only what *this* search proved, so gossip never echoes."""
        merge_visited(self._visited, entries)

    def export_frontier(self) -> List[Tuple[Tuple[int, int], ...]]:
        """Split the unexplored remainder of the claim into disjoint claims.

        Call after :meth:`prepare_iteration` has advanced the stack to the
        next unexplored branch (and :attr:`exhausted` is still False).  The
        result lists, in depth-first order, the current path plus one claim
        per unvisited right sibling along it; their subtrees partition
        everything this search has not explored yet.
        """
        if self.exhausted:
            return []
        path = [(point.num_options, point.index) for point in self._stack]
        claims = [tuple(path)]
        for level in range(len(self._stack) - 1, self._frozen_depth - 1, -1):
            point = self._stack[level]
            for sibling in range(point.index + 1, point.num_options):
                claims.append((*path[:level], (point.num_options, sibling)))
        return claims

    # ------------------------------------------------------------------
    def prepare_iteration(self, iteration: int) -> None:
        self._depth = 0
        if self._pruned_this_iteration:
            self.pruned_schedules += 1
            self._pruned_this_iteration = False
        if self.claim_covered:
            # Another worker fully explored a state on the claim prefix; the
            # whole subtree is redundant, so the claim is (vacuously) done.
            self.exhausted = True
            return
        if iteration == 0:
            return
        # Advance to the next unexplored branch: drop exhausted suffix, then
        # bump the deepest remaining choice.  A popped point's subtree is
        # fully explored, which is exactly when its state becomes safe to
        # record as visited (post-order).  Frozen claim decisions are never
        # popped: hitting the frozen boundary means the claim is exhausted.
        visited = self._visited
        delta = self.visited_delta
        while self._stack and not self._stack[-1].frozen and (
            self._stack[-1].index + 1 >= self._stack[-1].num_options
        ):
            point = self._stack.pop()
            state = point.state
            if state is not None:
                fingerprint, remaining = state
                if remaining > visited.get(fingerprint, -1):
                    visited[fingerprint] = remaining
                    delta[fingerprint] = remaining
        if not self._stack or self._stack[-1].frozen:
            self.exhausted = True
            return
        self._stack[-1].index += 1

    def _choose(self, num_options: int, state: Optional[Tuple[int, int]] = None) -> int:
        if self.claim_covered:
            return 0  # walking out of an abandoned claim: any branch will do
        if self._depth < len(self._stack):
            point = self._stack[self._depth]
            if point.num_options != num_options:
                if point.frozen:
                    # Frozen decisions replay deterministically and covered
                    # flips are intercepted in next_machine, so a mismatch
                    # here means the program under test is nondeterministic
                    # beyond runtime control.  Abandoning silently would
                    # drop an unexplored subtree — fail loudly instead.
                    raise RuntimeError(
                        f"claim prefix diverged at depth {self._depth}: "
                        f"recorded {point.num_options} options, found {num_options}"
                    )
                # The prefix diverged (the program is not purely determined by
                # earlier choices, or a node's covered-status flipped);
                # restart the subtree from this point.
                del self._stack[self._depth:]
                self._stack.append(_ChoicePoint(num_options, 0, state))
        else:
            self._stack.append(_ChoicePoint(num_options, 0, state))
        index = self._stack[self._depth].index
        self._depth += 1
        return index

    def _observe_state(self, step: int) -> Optional[Tuple[int, int]]:
        """``(fingerprint, remaining steps)`` of the current global state.

        ``None`` when stateful search is off, the runtime maintains no
        tracker, or the fingerprint is inexact (dedupe would be unsound).
        """
        if not self._stateful or self._runtime is None:
            return None
        current = self._runtime.execution_fingerprint()
        if current is None or not current.exact:
            return None
        return (current.value, self._max_steps - step)

    def _is_covered(self, state: Optional[Tuple[int, int]]) -> bool:
        """Whether the state was already fully explored this deep or deeper."""
        return (
            state is not None
            and self._visited.get(state[0], -1) >= state[1]
        )

    def next_machine(self, enabled: Sequence[MachineId], step: int) -> MachineId:
        ordered = sorted(enabled, key=lambda mid: mid.value)
        if self.claim_covered:
            return ordered[0]
        state = self._observe_state(step)
        if self._is_covered(state):
            if self._depth < self._frozen_depth:
                # A *frozen* decision's state is covered (necessarily by a
                # seeded entry — post-order recording means this search
                # cannot have recorded an ancestor of its own prefix): every
                # behaviour in the claim was explored by another worker.
                self.claim_covered = True
                return ordered[0]
            # Every behaviour below this point was explored from a previous
            # visit with at least as many remaining steps: walk out through
            # a single forced branch instead of fanning out.  The forced
            # node still occupies a stack slot so replay stays aligned.
            self._pruned_this_iteration = True
            self._choose(1)
            return ordered[0]
        return ordered[self._choose(len(ordered), state)]

    def next_boolean(self, requester: MachineId, step: int) -> bool:
        return bool(self._choose(2))

    def next_integer(self, requester: MachineId, max_value: int, step: int) -> int:
        return self._choose(max_value)

    def is_fair(self) -> bool:
        return False
