"""Open registry of scheduling strategies.

Strategies self-register with :func:`register_strategy`, which replaces the
closed ``_STRATEGIES`` dict that previously lived in
:mod:`repro.core.strategy`.  Third-party strategies can plug into the engine,
the :class:`~repro.core.portfolio.Portfolio` fan-out and the
``python -m repro`` CLI simply by defining a subclass of
:class:`~repro.core.strategy.base.SchedulingStrategy` and decorating it:

.. code-block:: python

    @register_strategy("my-scheduler", "my-alias")
    class MyStrategy(SchedulingStrategy):
        ...

Per-strategy options travel in ``TestingConfig.extra[<name>]`` (a plain dict),
which :func:`create_strategy` hands to the strategy's
:meth:`~repro.core.strategy.base.SchedulingStrategy.from_config` constructor.
"""

from __future__ import annotations

from typing import Dict, List, Type

from ..config import TestingConfig
from .base import SchedulingStrategy

#: name (or alias) -> strategy class
_REGISTRY: Dict[str, Type[SchedulingStrategy]] = {}


def register_strategy(name: str, *aliases: str):
    """Class decorator registering a :class:`SchedulingStrategy` under ``name``.

    Extra positional arguments register aliases for the same class.  Duplicate
    names (or aliases) raise :class:`ValueError` — registrations are global,
    so a collision is a programming error, not something to silently resolve.
    """

    def decorator(cls: Type[SchedulingStrategy]) -> Type[SchedulingStrategy]:
        if not (isinstance(cls, type) and issubclass(cls, SchedulingStrategy)):
            raise TypeError(f"@register_strategy expects a SchedulingStrategy subclass, got {cls!r}")
        keys = [key.lower() for key in (name, *aliases)]
        # Validate every name before touching the registry, so a collision on
        # an alias cannot leave a half-registered strategy behind.
        if len(set(keys)) != len(keys):
            raise ValueError(f"duplicate names in registration: {keys}")
        for key in keys:
            if key in _REGISTRY:
                raise ValueError(
                    f"strategy name {key!r} is already registered to "
                    f"{_REGISTRY[key].__name__}"
                )
        for key in keys:
            _REGISTRY[key] = cls
        cls.registered_name = name
        return cls

    return decorator


def available_strategies() -> List[str]:
    """Sorted canonical names of every registered strategy (no aliases)."""
    return sorted({cls.registered_name for cls in _REGISTRY.values()})


def strategy_class(name: str) -> Type[SchedulingStrategy]:
    """Look up a registered strategy class by name or alias."""
    key = name.lower()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown strategy {name!r}; known strategies: {known}")
    return _REGISTRY[key]


def create_strategy(config: TestingConfig) -> SchedulingStrategy:
    """Build the scheduling strategy described by ``config``.

    The strategy named ``config.strategy`` is instantiated through its
    ``from_config`` classmethod, receiving the per-strategy option namespace
    ``config.extra[<canonical name>]`` (falling back to the alias used).
    """
    cls = strategy_class(config.strategy)
    options = config.extra.get(cls.registered_name, config.extra.get(config.strategy.lower(), {}))
    return cls.from_config(config, options)
