"""Dependence-aware DFS: sleep-set pruning from static independence facts.

``dpor-lite`` is :class:`~repro.core.strategy.dfs_strategy.DFSStrategy` plus
*sleep sets* (Godefroid).  At each scheduling point the strategy determines,
for every enabled machine, the event its dispatch would consume next, and
looks that ``(machine class, event type)`` pair up in a statically computed
independence table (built by
:func:`repro.analysis.independence.build_independence_table` and threaded in
through ``TestingConfig.independence``).  Once the search has fully explored
the subtree where machine *m* runs at a point, *m* goes to *sleep* in the
sibling subtrees: as long as every subsequently chosen dispatch provably
commutes with *m*'s, scheduling *m* later can only reach states the explored
subtree already covered, so branches that would schedule it are pruned.

Table versions: version-2 tables split each footprint into *writes* (machines
the dispatch can send to) and *reads* (machines whose inboxes it only
queries), so two dispatches that merely read the same machine commute.
Version-1 tables carry merged ``sends``/``queries`` item lists; they are
normalized on resolution to ``writes = sends + queries, reads = ()``, which
reproduces the historical all-overlaps-conflict behavior exactly.  Any other
version is ignored, falling back to plain DFS.

Soundness discipline — everything degrades to *dependent*:

* no table, unknown machine class, unknown event type, or an ``opaque``
  table entry: the dispatch conflicts with everything;
* a machine paused in a coroutine or blocked in ``Receive``: its next step
  resumes arbitrary handler code, so it is dynamically opaque;
* a symbolic footprint item (``{"attr": name}``, ``{"event-field": name}``)
  that does not resolve to a live :class:`MachineId` at the scheduling
  point: opaque.

Why insertion-time footprints stay valid while a machine sleeps: a sleeping
machine is by definition not dispatched, so its state, its attributes, its
inbox head — and therefore the head event's payload fields an
``{"event-field": name}`` item reads — cannot change (sends append at the
back; defer/ignore disciplines depend only on its own state), and any
*other* dispatch that could invalidate the resolution would have to touch
the sleeping machine or mutate its payload (which makes that dispatch's
method external, hence opaque) — dependent either way, removing the sleep
entry first.

When ``TestingConfig.independence`` is ``None`` the strategy behaves exactly
like plain ``dfs``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, NamedTuple, Optional, Sequence, Set

from ..fingerprint import stable_hash
from ..ids import MachineId
from .dfs_strategy import DFSStrategy
from .registry import register_strategy

#: table format versions this consumer understands (see
#: ``repro.analysis.independence.TABLE_VERSION``); any other version is
#: ignored, falling back to plain DFS.
_SUPPORTED_TABLE_VERSIONS = frozenset({1, 2})


def _type_key(cls: type) -> str:
    # Mirrors repro.analysis.independence.type_key; duplicated so repro.core
    # never imports from repro.analysis (the dependency points the other way).
    return f"{cls.__module__}.{cls.__qualname__}"


class _Touch(NamedTuple):
    """A dispatch footprint resolved against the live machine table."""

    writes: FrozenSet[int]  # machine-id values the dispatch can mutate
    reads: FrozenSet[int]  # machine-id values it only queries
    inst_classes: FrozenSet[str]  # type keys of all touched instances
    classes: FrozenSet[str]  # type keys of freshly created send targets
    monitors: FrozenSet[str]  # monitor type keys the dispatch can notify
    creates: bool  # whether the dispatch allocates machine ids


@register_strategy("dpor-lite")
class DporLiteStrategy(DFSStrategy):
    """DFS with static-independence sleep-set pruning."""

    name = "dpor-lite"

    def __init__(
        self,
        seed: int = 0,
        independence: Optional[dict] = None,
        stateful: bool = False,
    ) -> None:
        super().__init__(seed, stateful=stateful)
        table: Optional[Mapping[str, dict]] = None
        if (
            isinstance(independence, dict)
            and independence.get("version") in _SUPPORTED_TABLE_VERSIONS
        ):
            table = independence.get("machines", {})
        self._table = table
        #: machine-id value -> footprint resolved when the machine fell asleep
        self._sleep: Dict[int, _Touch] = {}

    @classmethod
    def from_config(cls, config, options: Optional[Mapping] = None) -> "DporLiteStrategy":
        options = dict(options or {})
        return cls(
            seed=config.seed,
            independence=getattr(config, "independence", None),
            stateful=bool(options.get("stateful", getattr(config, "stateful", False))),
        )

    def prepare_iteration(self, iteration: int) -> None:
        super().prepare_iteration(iteration)
        self._sleep = {}

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def next_machine(self, enabled: Sequence[MachineId], step: int) -> MachineId:
        if self._table is None or self._runtime is None:
            return super().next_machine(enabled, step)
        ordered = sorted(enabled, key=lambda mid: mid.value)
        if self.claim_covered:
            return ordered[0]
        # Stateful dedupe composes *before* the sleep-set machinery: a
        # covered state needs no fan-out at all, and the forced branch may
        # legitimately run a sleeping machine, so the sleep set is dropped
        # for the remainder of this (provably covered) suffix.  The sleep
        # set is folded into the state identity (Godefroid): the same global
        # state entered with a different sleep set explores a different
        # pruned subtree, so only identical (state, sleep) revisits are
        # provably redundant.
        state = self._observe_state(step)
        if state is not None and self._sleep:
            sleep_hash = stable_hash(tuple(sorted(self._sleep)))[0]
            state = (state[0] ^ sleep_hash, state[1])
        if self._is_covered(state):
            if self._depth < self._frozen_depth:
                # Covered on the frozen claim prefix: another worker already
                # exhausted this (state, sleep) — abandon the whole claim
                # (see DFSStrategy.next_machine).
                self.claim_covered = True
                return ordered[0]
            self._pruned_this_iteration = True
            self._choose(1)
            self._sleep = {}
            return ordered[0]
        sleep = self._sleep
        if sleep:
            allowed = [mid for mid in ordered if mid.value not in sleep]
            if not allowed:
                # Every enabled machine is asleep.  Classical sleep sets
                # would cut the execution here (the state is fully covered);
                # this strategy cannot abort mid-execution, so it re-opens
                # the full set — sound, merely exploring a covered branch.
                allowed = ordered
                sleep = {}
        else:
            allowed = ordered
        index = self._choose(len(allowed), state)
        chosen = allowed[index]
        chosen_touch = self._touch_of(chosen)
        new_sleep: Dict[int, _Touch] = {}
        if chosen_touch is not None:
            # Surviving sleepers: still independent of the chosen dispatch.
            for value, touch in sleep.items():
                if value != chosen.value and _independent(touch, chosen_touch):
                    new_sleep[value] = touch
            # Earlier siblings at this point: their subtrees are fully
            # explored (DFS walks allowed[] left to right), so they fall
            # asleep for the remainder of this branch if they commute.
            for sibling in allowed[:index]:
                if sibling.value in new_sleep:
                    continue
                touch = self._touch_of(sibling)
                if touch is not None and _independent(touch, chosen_touch):
                    new_sleep[sibling.value] = touch
        self._sleep = new_sleep
        return chosen

    # ------------------------------------------------------------------
    # footprint resolution
    # ------------------------------------------------------------------
    def _touch_of(self, mid: MachineId) -> Optional[_Touch]:
        """Resolved footprint of ``mid``'s next dispatch (None = opaque)."""
        machine = self._runtime._machines_by_value.get(mid.value)
        if machine is None:
            return None
        if machine._coroutine is not None or machine._pending_receive is not None:
            return None  # paused mid-handler: dynamically opaque
        event = _head_event(machine)
        if event is None:
            return None
        entry = self._table.get(_type_key(type(machine)))
        if entry is None:
            return None
        footprint = entry.get("events", {}).get(_type_key(type(event)))
        if footprint is None or footprint.get("opaque"):
            return None
        return self._resolve(machine, mid, footprint, event)

    def _resolve(
        self, machine, mid: MachineId, footprint: dict, event
    ) -> Optional[_Touch]:
        machines_by_value = self._runtime._machines_by_value
        if "writes" in footprint or "reads" in footprint:
            write_items = footprint.get("writes", ())
            read_items = footprint.get("reads", ())
        else:  # version-1 footprint: every named machine counts as written
            write_items = (*footprint.get("sends", ()), *footprint.get("queries", ()))
            read_items = ()
        writes = {mid.value}  # a dispatch always mutates its own machine
        reads: Set[int] = set()
        classes: Set[str] = set()

        def _resolve_items(items, into: Set[int]) -> bool:
            for item in items:
                if item == "self":
                    continue  # own value is already in ``writes``
                if not isinstance(item, dict):
                    return False
                if "attr" in item:
                    target = getattr(machine, item["attr"], None)
                    if not isinstance(target, MachineId):
                        return False  # attr unset or not a machine id yet
                    into.add(target.value)
                elif "attr-values" in item:
                    container = getattr(machine, item["attr-values"], None)
                    if isinstance(container, dict):
                        values = container.values()
                    elif isinstance(container, (list, tuple, set, frozenset)):
                        values = container
                    else:
                        return False
                    for value in values:
                        if not isinstance(value, MachineId):
                            return False
                        into.add(value.value)
                elif "event-field" in item:
                    target = getattr(event, item["event-field"], None)
                    if not isinstance(target, MachineId):
                        return False  # payload does not carry a machine id
                    into.add(target.value)
                elif "class" in item:
                    classes.add(item["class"])
                else:
                    return False
            return True

        if not _resolve_items(write_items, writes):
            return None
        if not _resolve_items(read_items, reads):
            return None
        inst_classes = set()
        for value in writes | reads:
            target = machines_by_value.get(value)
            if target is None:
                return None  # names a machine the runtime no longer knows
            inst_classes.add(_type_key(type(target)))
        return _Touch(
            writes=frozenset(writes),
            reads=frozenset(reads),
            inst_classes=frozenset(inst_classes),
            classes=frozenset(classes),
            monitors=frozenset(footprint.get("monitors", ())),
            creates=bool(footprint.get("creates")),
        )


def _head_event(machine):
    """The event instance the next dispatch of ``machine`` will consume.

    Mirrors the dispatch order in ``TestRuntime._execution_loop``: the raised
    queue drains first and bypasses disciplines; otherwise the first
    dequeuable inbox event is consumed (a plain state context dequeues the
    head directly).
    """
    if machine._raised:
        return machine._raised[0]
    ctx = machine._state_ctx
    inbox = machine._inbox
    if ctx.plain:
        return inbox[0] if inbox else None
    for event in inbox:
        if ctx.dequeuable(type(event)):
            return event
    return None


def _independent(a: _Touch, b: _Touch) -> bool:
    """Whether two resolved footprints provably commute."""
    if a.creates and b.creates:
        return False  # machine-id allocation order is observable
    if a.monitors & b.monitors:
        return False
    if a.writes & (b.writes | b.reads):
        return False
    if b.writes & a.reads:
        return False
    # read/read overlaps commute: count_pending cannot observe another
    # query, only sends (writes) change an inbox.
    # A freshly created target cannot alias an existing instance, but guard
    # against a same-class interaction anyway: the conservative direction
    # costs at most one unpruned branch.
    if a.classes & (b.classes | b.inst_classes):
        return False
    if b.classes & (a.classes | a.inst_classes):
        return False
    return True


__all__ = ["DporLiteStrategy"]
