"""Uniform random scheduler.

At every scheduling point a machine is chosen uniformly at random from the
enabled set; boolean and integer choices are uniform as well.  Random
scheduling is simple yet remarkably effective at exposing concurrency bugs
(Thomson et al., PPoPP 2014), and is the first of the two schedulers evaluated
in Table 2 of the paper.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..ids import MachineId
from .base import SchedulingStrategy
from .registry import register_strategy


@register_strategy("random")
class RandomStrategy(SchedulingStrategy):
    """Uniformly random scheduling and value choices."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._rng = random.Random(seed)

    def prepare_iteration(self, iteration: int) -> None:
        self._rng = random.Random(f"{self.seed}:{iteration}")

    def next_machine(self, enabled: Sequence[MachineId], step: int) -> MachineId:
        return enabled[self._rng.randrange(len(enabled))]

    def next_boolean(self, requester: MachineId, step: int) -> bool:
        return self._rng.random() < 0.5

    def next_integer(self, requester: MachineId, max_value: int, step: int) -> int:
        return self._rng.randrange(max_value)
