"""Uniform random scheduler.

At every scheduling point a machine is chosen uniformly at random from the
enabled set; boolean and integer choices are uniform as well.  Random
scheduling is simple yet remarkably effective at exposing concurrency bugs
(Thomson et al., PPoPP 2014), and is the first of the two schedulers evaluated
in Table 2 of the paper.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..ids import MachineId
from .base import SchedulingStrategy
from .registry import register_strategy


@register_strategy("random")
class RandomStrategy(SchedulingStrategy):
    """Uniformly random scheduling and value choices."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._reseed(random.Random(seed))

    def _reseed(self, rng: random.Random) -> None:
        self._rng = rng
        # next_machine runs once per scheduling step; Random._randbelow is
        # what randrange(n) delegates to (same value sequence, same RNG
        # consumption) minus the argument-normalization wrapper.
        self._randbelow = rng._randbelow
        self._random = rng.random

    def prepare_iteration(self, iteration: int) -> None:
        self._reseed(random.Random(f"{self.seed}:{iteration}"))

    def next_machine(self, enabled: Sequence[MachineId], step: int) -> MachineId:
        return enabled[self._randbelow(len(enabled))]

    def next_boolean(self, requester: MachineId, step: int) -> bool:
        return self._random() < 0.5

    def next_integer(self, requester: MachineId, max_value: int, step: int) -> int:
        return self._randbelow(max_value)
