"""Deterministic round-robin scheduler.

Useful as a baseline and for writing deterministic unit tests of harnesses:
machines are scheduled in creation order, cycling through the enabled set.
Value choices alternate deterministically, so the same program always produces
the same execution.
"""

from __future__ import annotations

from typing import Sequence

from ..ids import MachineId
from .base import SchedulingStrategy
from .registry import register_strategy


@register_strategy("round-robin")
class RoundRobinStrategy(SchedulingStrategy):
    """Cycle through enabled machines in id order."""

    name = "round-robin"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._last_scheduled = -1
        self._boolean_toggle = False
        self._integer_counter = 0

    def prepare_iteration(self, iteration: int) -> None:
        self._last_scheduled = -1
        self._boolean_toggle = False
        self._integer_counter = iteration

    def next_machine(self, enabled: Sequence[MachineId], step: int) -> MachineId:
        ordered = sorted(enabled, key=lambda mid: mid.value)
        for machine in ordered:
            if machine.value > self._last_scheduled:
                self._last_scheduled = machine.value
                return machine
        chosen = ordered[0]
        self._last_scheduled = chosen.value
        return chosen

    def next_boolean(self, requester: MachineId, step: int) -> bool:
        self._boolean_toggle = not self._boolean_toggle
        return self._boolean_toggle

    def next_integer(self, requester: MachineId, max_value: int, step: int) -> int:
        self._integer_counter += 1
        return self._integer_counter % max_value
