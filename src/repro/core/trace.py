"""Schedule traces and their serialization.

A trace is the full sequence of nondeterministic decisions taken during one
execution: which machine was scheduled at each step, and the value of every
boolean/integer choice.  A trace uniquely determines an execution, so a bug
trace can be replayed deterministically (see
:class:`repro.core.strategy.replay.ReplayStrategy`).

``log`` carries the (materialized) execution log of the recorded run.  It is
populated by the runtime at bug-record time — traces of bug-free executions
keep it empty, because their logs are never materialized — so a JSON-saved
bug trace replayed later still shows what the original execution did.

:class:`TraceStep` is a :class:`~typing.NamedTuple`: one step is appended per
nondeterministic decision, which makes step construction part of the
scheduling hot path, and tuple construction is several times cheaper than a
(frozen) dataclass.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator, List, NamedTuple


SCHEDULE = "sched"
BOOLEAN = "bool"
INTEGER = "int"

#: Every kind a serialized trace step may carry; ``from_dict`` rejects
#: anything else so corrupted/hand-edited trace files fail at load time
#: with the offending step index instead of misbehaving during replay.
VALID_KINDS = frozenset((SCHEDULE, BOOLEAN, INTEGER))


class TraceStep(NamedTuple):
    """One nondeterministic decision.

    ``kind`` is one of :data:`SCHEDULE`, :data:`BOOLEAN` or :data:`INTEGER`.
    For schedule steps ``value`` is the integer id of the scheduled machine
    and ``label`` its printable name; for value steps ``value`` is the chosen
    value and ``label`` the id of the machine that asked for it.
    """

    kind: str
    value: int
    label: str = ""

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value, "label": self.label}

    @staticmethod
    def from_dict(data: dict) -> "TraceStep":
        return TraceStep(kind=data["kind"], value=int(data["value"]), label=data.get("label", ""))


@dataclass
class ScheduleTrace:
    """An ordered list of :class:`TraceStep` plus the execution log.

    ``states`` records, for the *i*-th :data:`SCHEDULE` step, the name of the
    scheduled machine's current state (the top of its state stack) at
    dispatch time, so replay/report tooling can show state context per step.
    It parallels the subsequence of schedule steps, not ``steps`` itself —
    boolean/integer choices carry no state entry.  Traces written before the
    field existed load with ``states == []``; replay never consults it.
    """

    steps: List[TraceStep] = field(default_factory=list)
    log: List[str] = field(default_factory=list)
    states: List[str] = field(default_factory=list)

    def add_scheduling_choice(self, machine_value: int, label: str) -> None:
        self.steps.append(TraceStep(SCHEDULE, machine_value, label))

    def add_boolean_choice(self, value: bool, label: str) -> None:
        self.steps.append(TraceStep(BOOLEAN, int(value), label))

    def add_integer_choice(self, value: int, label: str) -> None:
        self.steps.append(TraceStep(INTEGER, value, label))

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[TraceStep]:
        return iter(self.steps)

    @property
    def num_nondeterministic_choices(self) -> int:
        """Total number of decisions (the #NDC column of Table 2)."""
        return len(self.steps)

    @property
    def num_scheduling_choices(self) -> int:
        return sum(1 for step in self.steps if step.kind == SCHEDULE)

    @property
    def num_value_choices(self) -> int:
        return sum(1 for step in self.steps if step.kind != SCHEDULE)

    def schedule_context(self):
        """Pairs of (schedule step, recorded state name), oldest first.

        Yields nothing for traces recorded before states were captured
        (old-format JSON) or hand-built from bare steps.
        """
        states = self.states
        if not states:
            return
        index = 0
        for step in self.steps:
            if step.kind == SCHEDULE:
                if index >= len(states):
                    return
                yield step, states[index]
                index += 1

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        payload = {"steps": [step.to_dict() for step in self.steps], "log": list(self.log)}
        # Emitted only when present, so traces saved by older versions and
        # traces built from bare step lists round-trip unchanged.
        if self.states:
            payload["states"] = list(self.states)
        return payload

    @staticmethod
    def from_dict(payload: dict) -> "ScheduleTrace":
        steps: List[TraceStep] = []
        for index, entry in enumerate(payload.get("steps", [])):
            step = TraceStep.from_dict(entry)
            if step.kind not in VALID_KINDS:
                raise ValueError(
                    f"trace step {index}: unknown kind {step.kind!r} "
                    f"(expected one of {sorted(VALID_KINDS)})"
                )
            steps.append(step)
        return ScheduleTrace(
            steps=steps,
            log=list(payload.get("log", [])),
            states=[str(state) for state in payload.get("states", [])],
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @staticmethod
    def from_json(text: str) -> "ScheduleTrace":
        return ScheduleTrace.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(indent=2))

    @staticmethod
    def load(path: str) -> "ScheduleTrace":
        with open(path, "r", encoding="utf-8") as handle:
            return ScheduleTrace.from_json(handle.read())
