"""Safety and liveness monitors.

Monitors are passive observers: machines notify them of interesting events
via :meth:`Machine.notify_monitor`, and the monitor updates its private state
and checks the specification.  Monitors can receive events but never send
them, which keeps specification state cleanly separated from program state
(§2.4 of the paper).

* A **safety monitor** flags erroneous finite behaviours with
  :meth:`Monitor.assert_that`.
* A **liveness monitor** declares some of its states *hot* (progress is
  required but has not happened yet) via the ``hot_states`` class attribute.
  If a liveness monitor is still in a hot state when an execution reaches the
  configured step bound (the "bounded infinite execution" heuristic of §2.5),
  or when the whole system becomes quiescent, a liveness violation is
  reported.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from .declarations import StateMachineSpec, build_spec
from .errors import FrameworkError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime import TestRuntime


class Monitor:
    """Base class for safety and liveness monitors.

    Subclasses declare event handlers with ``@on_event`` (optionally scoped to
    a state), transition between states with :meth:`goto`, and mark liveness
    requirements by listing state names in ``hot_states``.
    """

    initial_state: str = "init"
    #: States in which the monitor demands eventual progress.
    hot_states: frozenset = frozenset()

    _spec_cache: dict = {}

    def __init__(self, runtime: "TestRuntime") -> None:
        self._runtime = runtime
        self._current_state = type(self).initial_state
        #: Number of consecutive runtime steps spent in a hot state.
        self._hot_since_step: Optional[int] = None
        #: per-instance handle on the (class-cached) spec so event dispatch
        #: skips a dict lookup per notification.
        self._spec = type(self).spec()

    @classmethod
    def spec(cls) -> StateMachineSpec:
        cached = Monitor._spec_cache.get(cls)
        if cached is None:
            cached = build_spec(cls)
            Monitor._spec_cache[cls] = cached
        return cached

    @classmethod
    def is_liveness_monitor(cls) -> bool:
        return bool(cls.hot_states)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def current_state(self) -> str:
        return self._current_state

    @property
    def is_hot(self) -> bool:
        return self._current_state in type(self).hot_states

    def goto(self, state: str) -> None:
        """Transition the monitor to ``state`` (running any entry action)."""
        spec = self._spec
        exit_action = spec.exit_actions.get(self._current_state)
        if exit_action is not None:
            getattr(self, exit_action)()
        self._current_state = state
        self._runtime.record_monitor_state(self, state)
        entry_action = spec.entry_actions.get(state)
        if entry_action is not None:
            getattr(self, entry_action)()

    # ------------------------------------------------------------------
    # specification helpers
    # ------------------------------------------------------------------
    def assert_that(self, condition: bool, message: str = "") -> None:
        """Global safety assertion over the monitor's accumulated history."""
        self._runtime.check_assertion(condition, message, source=type(self).__name__)

    def log(self, message: str) -> None:
        # Lazy capture, like Machine.log: the final string is only built if
        # the log is materialized (bug found or verbose mirroring).
        self._runtime.log("{}: {}", type(self).__name__, message)

    # ------------------------------------------------------------------
    # hook for the runtime
    # ------------------------------------------------------------------
    def handle(self, event: Event) -> None:
        """Dispatch ``event`` to the handler registered for the current state."""
        info = self._spec.handler_for(self._current_state, type(event))
        if info is None:
            raise FrameworkError(
                f"monitor {type(self).__name__} has no handler for "
                f"{type(event).__name__} in state {self._current_state!r}"
            )
        handler = getattr(self, info.method_name)
        if info.wants_event:
            handler(event)
        else:
            handler()

    def __repr__(self) -> str:
        marker = "hot" if self.is_hot else "cold"
        return f"<{type(self).__name__} state={self._current_state!r} ({marker})>"
