"""Safety and liveness monitors.

Monitors are passive observers: machines notify them of interesting events
via :meth:`Machine.notify_monitor`, and the monitor updates its private state
and checks the specification.  Monitors can receive events but never send
them, which keeps specification state cleanly separated from program state
(§2.4 of the paper).

* A **safety monitor** flags erroneous finite behaviours with
  :meth:`Monitor.assert_that`.
* A **liveness monitor** declares some of its states *hot* (progress is
  required but has not happened yet) via the ``hot_states`` class attribute.
  If a liveness monitor is still in a hot state when an execution reaches the
  configured step bound (the "bounded infinite execution" heuristic of §2.5),
  or when the whole system becomes quiescent, a liveness violation is
  reported.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from .declarations import (
    IGNORE,
    StateMachineSpec,
    StateRef,
    build_spec,
    resolve_state_name,
)
from .errors import FrameworkError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runtime.kernel import RuntimeKernel


class Monitor:
    """Base class for safety and liveness monitors.

    Subclasses declare event handlers either with nested
    :class:`~repro.core.declarations.State` classes (marking hot liveness
    states with ``class Waiting(State, hot=True)``) or with the legacy
    ``@on_event(state=...)`` form plus the ``hot_states`` class attribute;
    both lower to the same spec.  Monitors transition with :meth:`goto`.
    """

    initial_state: str = "init"
    #: States in which the monitor demands eventual progress (legacy form;
    #: merged with states declared ``hot=True`` in the State DSL).
    hot_states: frozenset = frozenset()

    _spec_cache: dict = {}

    def __init__(self, runtime: "RuntimeKernel") -> None:
        self._runtime = runtime
        spec = type(self).spec()
        initial = spec.initial_state if spec.initial_state is not None else type(self).initial_state
        self._current_state = initial
        #: Number of consecutive runtime steps spent in a hot state.
        self._hot_since_step: Optional[int] = None
        #: per-instance handle on the (class-cached) spec so event dispatch
        #: skips a dict lookup per notification.
        self._spec = spec
        #: effective hot-state set: legacy class attribute plus DSL-declared.
        self._hot_states = frozenset(type(self).hot_states) | spec.hot_states
        #: monotonic goto count; registration uses it to tell "never left the
        #: initial state" from "left and came back".
        self._transition_count = 0

    @classmethod
    def spec(cls) -> StateMachineSpec:
        cached = Monitor._spec_cache.get(cls)
        if cached is None:
            cached = build_spec(cls)
            if cached.deferred:
                states = ", ".join(sorted(cached.deferred))
                raise TypeError(
                    f"monitor {cls.__name__} declares deferred events (state(s) "
                    f"{states}): monitors are notified synchronously and cannot "
                    f"defer — drop with `ignored` or handle the event instead"
                )
            Monitor._spec_cache[cls] = cached
        return cached

    @classmethod
    def is_liveness_monitor(cls) -> bool:
        return bool(cls.hot_states) or bool(cls.spec().hot_states)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def current_state(self) -> str:
        return self._current_state

    @property
    def is_hot(self) -> bool:
        return self._current_state in self._hot_states

    def goto(self, state: StateRef) -> None:
        """Transition the monitor to ``state`` (running any entry action).

        ``state`` is a state name or a nested State subclass.
        """
        state = resolve_state_name(state)
        spec = self._spec
        exit_action = spec.exit_actions.get(self._current_state)
        if exit_action is not None:
            getattr(self, exit_action)()
        self._current_state = state
        self._transition_count += 1
        self._runtime.record_monitor_state(self, state)
        entry_action = spec.entry_actions.get(state)
        if entry_action is not None:
            getattr(self, entry_action)()

    # ------------------------------------------------------------------
    # specification helpers
    # ------------------------------------------------------------------
    def assert_that(self, condition: bool, message: str = "") -> None:
        """Global safety assertion over the monitor's accumulated history."""
        self._runtime.check_assertion(condition, message, source=type(self).__name__)

    def log(self, message: str) -> None:
        # Lazy capture, like Machine.log: the final string is only built if
        # the log is materialized (bug found or verbose mirroring).
        self._runtime.log("{}: {}", type(self).__name__, message)

    # ------------------------------------------------------------------
    # hook for the runtime
    # ------------------------------------------------------------------
    def handle(self, event: Event) -> None:
        """Dispatch ``event`` to the handler registered for the current state.

        States may declare ``ignored = (EventT, ...)``: matching
        notifications are dropped silently in that state.  (``deferred`` is
        rejected at spec-build time — monitors have no inbox to defer into.)
        """
        event_type = type(event)
        context = self._spec.context_for((self._current_state,))
        try:
            info = context.actions[event_type]
        except KeyError:
            info = context.resolve(event_type)
        if info is IGNORE:
            self._runtime.log(
                "monitor {} ignored {!r} in state {!r}",
                type(self).__name__, event, self._current_state,
            )
            return
        if info is None:
            raise FrameworkError(
                f"monitor {type(self).__name__} has no handler for "
                f"{event_type.__name__} in state {self._current_state!r}"
            )
        handler = getattr(self, info.method_name)
        if info.wants_event:
            handler(event)
        else:
            handler()

    def __repr__(self) -> str:
        marker = "hot" if self.is_hot else "cold"
        return f"<{type(self).__name__} state={self._current_state!r} ({marker})>"
