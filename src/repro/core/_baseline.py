"""Seed-equivalent reference runtime, for equivalence tests and benchmarks.

:class:`BaselineRuntime` reinstates the pre-overhaul hot path of
:class:`~repro.core.runtime.TestRuntime`:

* **eager logging** — every log call formats its string immediately and
  appends it to an unbounded list, exactly like the original f-string call
  sites (``repr()`` runs on every send/dispatch/transition whether or not a
  bug is ever found);
* **full-scan scheduling** — ``_execution_loop`` rebuilds the enabled-machine
  list by scanning every machine on every step;
* **uncached dispatch** — handler resolution walks the handler table per
  event (no ``(state, event_type)`` memo) and trace labels are re-formatted
  per step instead of read from the cached ``MachineId._str``.

Two uses:

* the trace-stability regression tests run both runtimes over every strategy
  and assert byte-identical :class:`~repro.core.trace.ScheduleTrace` steps and
  identical bug outcomes — certifying the incremental enabled-set bookkeeping
  against the seed semantics;
* the before/after throughput benchmark (``benchmarks/test_bench_runtime_hotpath.py``)
  measures both in the same process, which makes the asserted speedup robust
  to machine load.

This module is intentionally not exported from :mod:`repro.core`: it exists
to pin down the seed behavior, not to be scheduled in production runs.
"""

from __future__ import annotations

from typing import List

from .errors import BugError, FrameworkError, UnhandledEventError
from .events import Halt, StartEvent
from .machine import Machine, MachineHaltRequested
from .runtime import TestRuntime, format_log_record


class _EagerSink:
    """Sink that formats every record immediately (the seed's cost model)."""

    __slots__ = ("lines",)

    def __init__(self) -> None:
        self.lines: List[str] = []

    def append(self, record) -> None:
        self.lines.append(format_log_record(record))


class BaselineRuntime(TestRuntime):
    """Pre-overhaul :class:`TestRuntime` behavior, bit-for-bit."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._sink = _EagerSink()

    @property
    def execution_log(self) -> List[str]:
        return list(self._sink.lines)

    # ------------------------------------------------------------------
    # Seed pending-query cost model: a full O(inbox) scan per call.  (The
    # reworked runtime answers type-only queries from maintained per-type
    # counts; the baseline's seed dequeue path below does not maintain
    # them, so it must not read them either.)
    # ------------------------------------------------------------------
    def count_pending_events(self, target, event_type, predicate=None) -> int:
        machine = self._machines.get(target)
        if machine is None:
            return 0
        count = 0
        for event in machine._inbox:
            if isinstance(event, event_type) and (predicate is None or predicate(event)):
                count += 1
        return count

    def has_pending_event(self, target, event_type, predicate=None) -> bool:
        machine = self._machines_by_value.get(target.value)
        if machine is None:
            return False
        for event in machine._inbox:
            if isinstance(event, event_type) and (predicate is None or predicate(event)):
                return True
        return False

    # ------------------------------------------------------------------
    def _execution_loop(self) -> None:
        # The seed loop: scan every machine for runnability on every step.
        while self.step_count < self.config.max_steps:
            enabled = [m for m in self._machines.values() if m._has_work()]
            if not enabled:
                self.termination_reason = "quiescence"
                return
            enabled_ids = [m.id for m in enabled]
            chosen_id = self.strategy.next_machine(enabled_ids, self.step_count)
            if chosen_id not in self._machines:
                raise FrameworkError(f"strategy chose unknown machine {chosen_id}")
            # Re-format the label per step, as the seed's str() call did.
            label = f"{chosen_id.name or chosen_id.type_name}({chosen_id.value})"
            self.trace.add_scheduling_choice(chosen_id.value, label)
            self.step_count += 1
            try:
                self._execute_step(self._machines[chosen_id])
            except BugError as error:
                self._record_bug(error)
                return
        self.termination_reason = "bound"

    def _execute_step(self, machine: Machine) -> None:
        try:
            if machine._coroutine is not None:
                if machine._pending_receive is None:
                    self._advance_coroutine(machine, None)
                    return
                event = machine._dequeue_matching(machine._pending_receive)
                self.log("{}: resumed with {!r}", machine.id, event)
                machine._pending_receive = None
                self._advance_coroutine(machine, event)
            else:
                event = machine._inbox.popleft()
                self._dispatch_event(machine, event)
        except MachineHaltRequested:
            self._halt_machine(machine)
        except (BugError, FrameworkError):
            raise
        except Exception as exc:  # noqa: BLE001 - seed behavior
            from .errors import UnexpectedExceptionError

            raise UnexpectedExceptionError(
                f"{machine.id}: unexpected {type(exc).__name__}: {exc}"
            ) from exc

    def _dispatch_event(self, machine: Machine, event) -> None:
        if isinstance(event, Halt):
            self._halt_machine(machine)
            return
        if isinstance(event, StartEvent):
            args, kwargs = getattr(machine, "_start_args", ((), {}))
            self.log("{}: starting", machine.id)
            result = machine.on_start(*args, **kwargs)
            self._maybe_start_coroutine(machine, result)
            return
        spec = type(machine).spec()
        # Seed-era resolution cost: walk the handler table, no memo.
        info = spec._resolve_handler(machine.current_state, type(event))
        if info is None:
            if machine.ignore_unhandled_events:
                self.log(
                    "{}: ignored unhandled {!r} in state {!r}",
                    machine.id, event, machine.current_state,
                )
                return
            raise UnhandledEventError(
                f"{machine.id}: no handler for {type(event).__name__} "
                f"in state {machine.current_state!r}"
            )
        self.log("{}: handling {!r} in state {!r}", machine.id, event, machine.current_state)
        if self.coverage is not None:
            self.coverage.record_handled(
                type(machine).__name__, machine.current_state, type(event).__name__
            )
        handler = getattr(machine, info.method_name)
        result = handler(event) if info.wants_event else handler()
        self._maybe_start_coroutine(machine, result)
