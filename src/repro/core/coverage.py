"""Coverage tracking across executions.

The engine keeps a single :class:`CoverageTracker` for the whole testing
session and feeds it from every execution.  Coverage is useful both as a
stopping heuristic ("have new behaviours been seen recently?") and as the
raw material for the Table 1 modeling statistics.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Set, Tuple


@dataclass
class CoverageTracker:
    """Accumulates machine, state, transition and event coverage."""

    machines: Counter = field(default_factory=Counter)
    events: Counter = field(default_factory=Counter)
    handled: Counter = field(default_factory=Counter)
    transitions: Set[Tuple[str, str, str]] = field(default_factory=set)
    monitor_states: Set[Tuple[str, str]] = field(default_factory=set)
    #: distinct global-state fingerprints observed at scheduling points
    #: (see :mod:`repro.core.fingerprint`); empty unless fingerprinting is on
    fingerprints: Set[int] = field(default_factory=set)

    def record_machine(self, machine_type: str) -> None:
        self.machines[machine_type] += 1

    def record_event(self, event_type: str) -> None:
        self.events[event_type] += 1

    def record_handled(self, machine_type: str, state: str, event_type: str) -> None:
        self.handled[(machine_type, state, event_type)] += 1

    def record_transition(self, machine_type: str, source: str, target: str) -> None:
        self.transitions.add((machine_type, source, target))

    def record_monitor_state(self, monitor_type: str, state: str) -> None:
        self.monitor_states.add((monitor_type, state))

    def record_fingerprint(self, fingerprint: int) -> None:
        self.fingerprints.add(fingerprint)

    # ------------------------------------------------------------------
    @property
    def distinct_handled_tuples(self) -> int:
        """Number of distinct (machine, state, event) tuples exercised."""
        return len(self.handled)

    @property
    def distinct_transitions(self) -> int:
        return len(self.transitions)

    def to_dict(self) -> Dict:
        """JSON-safe representation (tuple keys become lists)."""
        return {
            "machines": dict(self.machines),
            "events": dict(self.events),
            "handled": [[*key, count] for key, count in sorted(self.handled.items())],
            "transitions": sorted(list(t) for t in self.transitions),
            "monitor_states": sorted(list(s) for s in self.monitor_states),
            # 64-bit values as fixed-width hex: JSON numbers lose precision
            # past 2**53 in some consumers, and hex round-trips exactly.
            "fingerprints": sorted(format(fp, "016x") for fp in self.fingerprints),
        }

    @staticmethod
    def from_dict(payload: Dict) -> "CoverageTracker":
        tracker = CoverageTracker()
        tracker.machines.update(payload.get("machines", {}))
        tracker.events.update(payload.get("events", {}))
        for index, row in enumerate(payload.get("handled", [])):
            if len(row) != 4:
                raise ValueError(
                    f"coverage handled row {index}: expected "
                    f"[machine, state, event, count], got {len(row)} items"
                )
            machine, state, event, count = row
            tracker.handled[(machine, state, event)] = count
        tracker.transitions.update(tuple(t) for t in payload.get("transitions", []))
        tracker.monitor_states.update(tuple(s) for s in payload.get("monitor_states", []))
        tracker.fingerprints.update(int(fp, 16) for fp in payload.get("fingerprints", []))
        return tracker

    def fingerprint_digest(self) -> str:
        """sha256 over the sorted fingerprint set (hex-encoded).

        A canonical content identity for the distinct-state set: identical
        across processes, ``PYTHONHASHSEED`` values and merge orders, so
        cross-process determinism gates compare one short string instead of
        shipping whole sets around.
        """
        encoded = ",".join(format(fp, "016x") for fp in sorted(self.fingerprints))
        return hashlib.sha256(encoded.encode()).hexdigest()

    def merge(self, other: "CoverageTracker") -> None:
        self.machines.update(other.machines)
        self.events.update(other.events)
        self.handled.update(other.handled)
        self.transitions.update(other.transitions)
        self.monitor_states.update(other.monitor_states)
        self.fingerprints.update(other.fingerprints)

    def summary(self) -> Dict[str, int]:
        return {
            "machine_types": len(self.machines),
            "machines_created": sum(self.machines.values()),
            "event_types": len(self.events),
            "events_sent": sum(self.events.values()),
            "handled_tuples": self.distinct_handled_tuples,
            "transitions": self.distinct_transitions,
            "monitor_states": len(self.monitor_states),
            "fingerprints": len(self.fingerprints),
        }
