"""Machine identifiers.

A :class:`MachineId` is a small immutable handle used to address a machine.
Machines never hold direct references to each other; they exchange ids and
send events through the runtime, which is what lets the testing runtime
serialize and control every interaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class MachineId:
    """Unique, hashable handle for a machine instance.

    Attributes:
        value: monotonically increasing integer, unique within a runtime.
        type_name: class name of the machine, for readable traces.
        name: optional user-supplied friendly name (e.g. ``"EN-0"``).
    """

    value: int
    type_name: str = field(compare=False)
    name: str = field(compare=False, default="")

    def __str__(self) -> str:
        label = self.name or self.type_name
        return f"{label}({self.value})"

    def __repr__(self) -> str:
        return f"MachineId({self.value}, {self.type_name!r}, {self.name!r})"
