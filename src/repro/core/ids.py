"""Machine identifiers.

A :class:`MachineId` is a small immutable handle used to address a machine.
Machines never hold direct references to each other; they exchange ids and
send events through the runtime, which is what lets the testing runtime
serialize and control every interaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class MachineId:
    """Unique, hashable handle for a machine instance.

    Attributes:
        value: monotonically increasing integer, unique within a runtime.
        type_name: class name of the machine, for readable traces.
        name: optional user-supplied friendly name (e.g. ``"EN-0"``).
    """

    value: int
    type_name: str = field(compare=False)
    name: str = field(compare=False, default="")

    def __post_init__(self) -> None:
        # Ids are stringified on the scheduling hot path (one trace label per
        # step), so the printable form is built once.  The slot is set with
        # object.__setattr__ because the dataclass is frozen.
        label = self.name or self.type_name
        object.__setattr__(self, "_str", f"{label}({self.value})")
        object.__setattr__(self, "_hash", hash(self.value))

    def __str__(self) -> str:
        return self._str

    def __hash__(self) -> int:
        # Ids key the runtime's machine table and are hashed on every
        # scheduling step; equality compares ``value`` alone (the other
        # fields are compare=False), so hashing ``value`` alone is consistent.
        return self._hash

    def __repr__(self) -> str:
        return f"MachineId({self.value}, {self.type_name!r}, {self.name!r})"
