"""The serialized systematic-testing runtime.

The :class:`TestRuntime` owns every machine inbox and executes the whole
system in a single thread.  Every interleaving decision — which machine runs
next, and the value of every controlled boolean/integer choice — is delegated
to a :class:`~repro.core.strategy.base.SchedulingStrategy` and recorded in a
:class:`~repro.core.trace.ScheduleTrace`, so that any execution (in particular
a buggy one) can be replayed deterministically.

One :class:`TestRuntime` instance corresponds to one execution; the
:class:`~repro.core.engine.TestingEngine` creates a fresh runtime per
iteration.

Hot-path design
---------------

Table 2 of the paper rests on running very large numbers of controlled
executions, so the per-step path is engineered to do no avoidable work on
executions that find no bug:

* **Lazy structured logging.**  :meth:`TestRuntime.log` records
  ``(template, args)`` tuples in a bounded ring buffer instead of building
  strings eagerly.  ``repr()``/``str.format`` run only when ``verbose`` is
  set (mirroring to stdout) or when a bug is recorded and the log has to be
  materialized for the report — never on the no-bug fast path.
* **Incremental enabled set.**  Machines register/deregister their
  runnability on enqueue/dequeue/halt/receive-match, so the scheduler reads
  a maintained, id-ordered list instead of re-scanning every machine on
  every step.  The order (ascending machine id == creation order) is exactly
  the order the previous full-scan implementation produced, so all
  strategies — including replay — see identical enabled sequences and emit
  byte-identical :class:`ScheduleTrace` steps.
* **Cached handler resolution.**  Dispatch resolves events through the
  machine's :class:`~repro.core.declarations.StateContext`, which memoizes
  the ``event_type -> handler | DEFER | IGNORE`` classification per state
  stack, so dispatch stops re-walking the handler table for every event.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from types import GeneratorType
from typing import Any, Callable, Dict, List, Optional, Tuple

from .config import TestingConfig
from .coverage import CoverageTracker
from .declarations import DEFER, IGNORE, HandlerInfo, StateRef, resolve_state_name
from .errors import (
    BugError,
    DeadlockError,
    FrameworkError,
    LivenessViolationError,
    SafetyViolationError,
    UnexpectedExceptionError,
    UnhandledEventError,
)
from .events import Event, Halt, Receive, StartEvent
from .ids import MachineId
from .machine import Machine, MachineHaltRequested
from .monitors import Monitor
from .strategy.base import SchedulingStrategy
from .trace import BOOLEAN, INTEGER, SCHEDULE, ScheduleTrace, TraceStep

#: One deferred log entry: a flat ``(template, *args)`` tuple (flat rather
#: than nested to save one allocation per record on the hot path).  Arguments
#: are formatted (and therefore ``repr()``-ed) only when the log is
#: materialized, so they should be values whose printable form is stable for
#: the duration of the execution (ids, event payloads, state names).
LogRecord = Tuple[Any, ...]


#: Runtime-control events, dispatched outside the user handler table.
_CONTROL_EVENTS = (Halt, StartEvent)

#: ``tuple.__new__`` bound once: constructing a TraceStep through it skips
#: the generated NamedTuple ``__new__`` (a Python-level function) while
#: producing an identical object; used at the per-step trace-record sites.
_new_step = tuple.__new__


def format_log_record(record: LogRecord) -> str:
    """Materialize one deferred log record into its final string."""
    return record[0].format(*record[1:]) if len(record) > 1 else record[0]


class _VerboseLogSink:
    """Log sink that mirrors every record to stdout as it is appended.

    Non-verbose runtimes use the raw ring-buffer deque as their sink, so the
    per-record cost is a single C-level ``deque.append``; this wrapper is
    swapped in only when ``config.verbose`` is set and pays the formatting
    cost eagerly (that is the point of verbose mode).
    """

    __slots__ = ("_log",)

    def __init__(self, log: "deque[LogRecord]") -> None:
        self._log = log

    def append(self, record: LogRecord) -> None:
        self._log.append(record)
        print(f"[repro] {format_log_record(record)}")


@dataclass
class BugInfo:
    """Description of a specification violation found in one execution."""

    kind: str
    message: str
    step: int
    #: the live exception object; process-local, excluded from equality and
    #: JSON serialization so reports round-trip across process boundaries.
    exception: Optional[BaseException] = field(default=None, compare=False)
    trace: Optional[ScheduleTrace] = None
    log: List[str] = field(default_factory=list)
    #: minimized counterexample produced by :mod:`repro.core.shrink`, plus its
    #: shrink statistics; both None until a shrinker has run on this bug.
    shrunk_trace: Optional[ScheduleTrace] = None
    shrink: Optional["ShrinkStats"] = None  # noqa: F821 - see repro.core.shrink

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message} (at step {self.step})"

    def to_dict(self) -> dict:
        payload = {
            "kind": self.kind,
            "message": self.message,
            "step": self.step,
            "trace": self.trace.to_dict() if self.trace is not None else None,
        }
        # The runtime stores the same materialized log on the bug and on its
        # replayable trace; serialize it once (on the trace) and only emit a
        # separate "log" key when the two genuinely differ (hand-built bugs).
        if self.trace is None or self.log != self.trace.log:
            payload["log"] = list(self.log)
        # Shrink results are optional: payloads of unshrunk bugs stay
        # byte-identical to what previous versions wrote.  When shrinking
        # achieved nothing (shrunk == recorded trace) only the statistics
        # are emitted — from_dict points shrunk_trace back at trace — so the
        # full step list and log are never serialized twice.
        if self.shrunk_trace is not None and (
            self.trace is None or self.shrunk_trace.steps != self.trace.steps
        ):
            payload["shrunk_trace"] = self.shrunk_trace.to_dict()
        if self.shrink is not None:
            payload["shrink"] = self.shrink.to_dict()
        return payload

    @staticmethod
    def from_dict(payload: dict) -> "BugInfo":
        trace = payload.get("trace")
        trace = ScheduleTrace.from_dict(trace) if trace is not None else None
        log = payload.get("log")
        if log is None:
            log = trace.log if trace is not None else []
        shrunk = payload.get("shrunk_trace")
        shrink_stats = payload.get("shrink")
        if shrunk is not None:
            shrunk = ScheduleTrace.from_dict(shrunk)
        elif shrink_stats is not None:
            # stats without a shrunk_trace key: the shrink achieved no
            # reduction and to_dict elided the duplicate trace.
            shrunk = trace
        if shrink_stats is not None:
            from .shrink import ShrinkStats  # late import: shrink imports runtime

            shrink_stats = ShrinkStats.from_dict(shrink_stats)
        return BugInfo(
            kind=payload["kind"],
            message=payload["message"],
            step=int(payload["step"]),
            trace=trace,
            log=list(log),
            shrunk_trace=shrunk,
            shrink=shrink_stats,
        )


class TestRuntime:
    """Single-execution serialized runtime under scheduler control."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        strategy: SchedulingStrategy,
        config: Optional[TestingConfig] = None,
        coverage: Optional[CoverageTracker] = None,
    ) -> None:
        self.config = config or TestingConfig()
        self.strategy = strategy
        self.coverage = coverage
        self.trace = ScheduleTrace()
        self.bug: Optional[BugInfo] = None
        self.step_count = 0
        self.termination_reason: Optional[str] = None

        self._machines: Dict[MachineId, Machine] = {}
        self._monitors: Dict[type, Monitor] = {}
        self._next_machine_value = 0
        #: deferred (template, args) records in a ring buffer; bounded so
        #: that executions that run for millions of steps cannot grow memory
        #: without bound.  Only the most recent ``config.max_log_records``
        #: entries survive, which is what a bug report needs (the tail
        #: leading up to the violation).
        self._log: deque[LogRecord] = deque(maxlen=self.config.max_log_records)
        #: where hot-path call sites append records: the raw deque normally,
        #: a stdout-mirroring wrapper when ``verbose`` is on.
        self._sink = _VerboseLogSink(self._log) if self.config.verbose else self._log
        #: machine ids currently runnable, kept sorted ascending by id value
        #: (== creation order); maintained incrementally, never rebound.
        #: ``_enabled_values`` mirrors it with the raw integer values so the
        #: bisect maintenance compares C ints, not Python-level MachineId.
        self._enabled_ids: List[MachineId] = []
        self._enabled_values: List[int] = []
        #: immutable snapshot handed to strategies, rebuilt lazily only on
        #: steps where the enabled set actually changed.  A tuple, so a
        #: strategy that tries to mutate its argument fails loudly instead
        #: of corrupting the bookkeeping.
        self._enabled_snapshot: tuple = ()
        self._enabled_dirty = True
        #: hot-path machine lookup keyed by the id's integer value: hashing
        #: an int is C-level, hashing a MachineId calls back into Python.
        self._machines_by_value: Dict[int, Machine] = {}

    # ------------------------------------------------------------------
    # registration API (used by the test entry point and by machines)
    # ------------------------------------------------------------------
    def create_machine(
        self,
        machine_cls: type,
        *args: Any,
        name: str = "",
        creator: Optional[MachineId] = None,
        **kwargs: Any,
    ) -> MachineId:
        """Instantiate ``machine_cls`` and schedule its asynchronous start."""
        if not (isinstance(machine_cls, type) and issubclass(machine_cls, Machine)):
            raise FrameworkError(f"create_machine expects a Machine subclass, got {machine_cls!r}")
        machine_id = MachineId(self._next_machine_value, machine_cls.__name__, name)
        self._next_machine_value += 1
        machine = machine_cls(self, machine_id)
        machine._start_args = (args, kwargs)
        self._machines[machine_id] = machine
        self._machines_by_value[machine_id.value] = machine
        machine._enqueue(StartEvent())
        if self.coverage is not None:
            self.coverage.record_machine(machine_cls.__name__)
        if creator is not None:
            self.log("created {} by {}", machine_id, creator)
        else:
            self.log("created {}", machine_id)
        return machine_id

    def register_monitor(self, monitor_cls: type) -> Monitor:
        """Register a safety/liveness monitor for this execution."""
        if not (isinstance(monitor_cls, type) and issubclass(monitor_cls, Monitor)):
            raise FrameworkError(f"register_monitor expects a Monitor subclass, got {monitor_cls!r}")
        if monitor_cls in self._monitors:
            raise FrameworkError(f"monitor {monitor_cls.__name__} is already registered")
        monitor = monitor_cls(self)
        self._monitors[monitor_cls] = monitor
        self.log("registered monitor {}", monitor_cls.__name__)
        # Like machine start-up, the monitor's initial state runs its entry
        # action once, at registration — unless the constructor already
        # transitioned (its goto ran the target's entry action itself).
        if monitor._transition_count == 0:
            entry_action = monitor._spec.entry_actions.get(monitor._current_state)
            if entry_action is not None:
                getattr(monitor, entry_action)()
        return monitor

    # ------------------------------------------------------------------
    # introspection helpers (useful in tests)
    # ------------------------------------------------------------------
    def machine_instance(self, machine_id: MachineId) -> Machine:
        return self._machines[machine_id]

    def count_pending_events(self, target: MachineId, event_type: type, predicate=None) -> int:
        """Number of events of ``event_type`` currently queued at ``target``.

        Used by modeled environment machines (e.g. the timer) to avoid
        flooding a target's inbox with redundant events, which shrinks the
        explored state space without removing any interleaving of distinct
        events.
        """
        machine = self._machines.get(target)
        if machine is None:
            return 0
        count = 0
        for event in machine._inbox:
            if isinstance(event, event_type) and (predicate is None or predicate(event)):
                count += 1
        return count

    def has_pending_event(self, target: MachineId, event_type: type, predicate=None) -> bool:
        """Whether at least one matching event is queued at ``target``.

        Early-exit variant of :meth:`count_pending_events` for callers that
        only need existence (e.g. the modeled timer's one-outstanding-tick
        rule), so the common hot case stops at the first match.
        """
        machine = self._machines_by_value.get(target.value)
        if machine is None:
            return False
        for event in machine._inbox:
            if isinstance(event, event_type) and (predicate is None or predicate(event)):
                return True
        return False

    def machines_of_type(self, machine_cls: type) -> List[Machine]:
        return [m for m in self._machines.values() if isinstance(m, machine_cls)]

    def monitor_instance(self, monitor_cls: type) -> Optional[Monitor]:
        return self._monitors.get(monitor_cls)

    @property
    def execution_log(self) -> List[str]:
        """The execution log, materialized on demand (see :meth:`log`)."""
        return [format_log_record(record) for record in self._log]

    @property
    def enabled_machine_ids(self) -> List[MachineId]:
        """Snapshot of the currently runnable machine ids (ascending id)."""
        return list(self._enabled_ids)

    # ------------------------------------------------------------------
    # machine-facing services
    # ------------------------------------------------------------------
    def send_event(self, target: MachineId, event: Event, sender: Optional[MachineId] = None) -> None:
        # Hot path: one call per message sent.  Enqueue, enabled-set update
        # and coverage bookkeeping are inlined (see Machine._enqueue for the
        # reference form of the enabled-set rule).
        if not isinstance(event, Event):
            raise FrameworkError(f"send expects an Event instance, got {event!r}")
        machine = self._machines_by_value.get(target.value)
        if machine is None:
            raise FrameworkError(f"send to unknown machine {target}")
        if machine._halted:
            if sender is not None:
                self._sink.append(("dropped {} -> {}: {!r} (target halted)", sender, target, event))
            else:
                self._sink.append(("dropped {}: {!r} (target halted)", target, event))
            return
        machine._inbox.append(event)
        if not machine._enabled:
            receive = machine._pending_receive
            if receive is None:
                # Deferred/ignored events add no work; every event does on
                # the (overwhelmingly common) discipline-free plain path.
                ctx = machine._state_ctx
                if ctx.plain or ctx.dequeuable(type(event)):
                    self._mark_enabled(machine)
            elif receive.matches(event):
                self._mark_enabled(machine)
        if sender is not None:
            self._sink.append(("sent {} -> {}: {!r}", sender, target, event))
        else:
            self._sink.append(("sent {}: {!r}", target, event))
        if self.coverage is not None:
            self.coverage.events[type(event).__name__] += 1

    def next_boolean(self, requester: MachineId) -> bool:
        value = self.strategy.next_boolean(requester, self.step_count)
        # Inlined trace.add_boolean_choice; requester._str is the cached
        # str(), and tuple.__new__ skips the NamedTuple __new__ wrapper.
        self.trace.steps.append(
            _new_step(TraceStep, (BOOLEAN, 1 if value else 0, requester._str))
        )
        return value

    def next_integer(self, requester: MachineId, max_value: int) -> int:
        if max_value < 1:
            raise FrameworkError("next_integer requires max_value >= 1")
        value = self.strategy.next_integer(requester, max_value, self.step_count)
        self.trace.steps.append(_new_step(TraceStep, (INTEGER, value, requester._str)))
        return value

    def check_assertion(self, condition: bool, message: str, source: str) -> None:
        if not condition:
            raise SafetyViolationError(f"{source}: assertion failed: {message}")

    def notify_monitor(self, monitor_cls: type, event: Event, source: Optional[MachineId] = None) -> None:
        monitor = self._monitors.get(monitor_cls)
        if monitor is None:
            self.log("monitor {} not registered; dropping {!r}", monitor_cls.__name__, event)
            return
        self.log("monitor {} <- {!r} (from {})", monitor_cls.__name__, event, source)
        monitor.handle(event)

    def transition_machine(self, machine: Machine, state: StateRef) -> None:
        """``goto``: replace the top of the state stack, running exit/entry."""
        state = resolve_state_name(state)
        spec = machine._spec
        exit_action = spec.exit_actions.get(machine._current_state)
        if exit_action is not None:
            self._run_plain_action(machine, exit_action)
        previous = machine._current_state
        machine._state_stack[-1] = state
        machine._current_state = state
        machine._state_ctx = spec.context_for(tuple(machine._state_stack))
        machine._transition_count += 1
        self.log("{}: {} -> {}", machine._id, previous, state)
        if self.coverage is not None:
            self.coverage.record_transition(type(machine).__name__, previous, state)
        entry_action = spec.entry_actions.get(state)
        if entry_action is not None:
            self._run_plain_action(machine, entry_action)

    def push_machine_state(self, machine: Machine, state: StateRef) -> None:
        """Push ``state`` onto the stack: the current state pauses (no exit
        action) and keeps handling whatever the pushed state does not."""
        state = resolve_state_name(state)
        previous = machine._current_state
        machine._state_stack.append(state)
        machine._current_state = state
        machine._state_ctx = machine._spec.context_for(tuple(machine._state_stack))
        machine._transition_count += 1
        self.log("{}: pushed {} over {}", machine._id, state, previous)
        if self.coverage is not None:
            self.coverage.record_transition(type(machine).__name__, previous, state)
        entry_action = machine._spec.entry_actions.get(state)
        if entry_action is not None:
            self._run_plain_action(machine, entry_action)

    def pop_machine_state(self, machine: Machine) -> None:
        """Pop the top of the stack, running its exit action; the revealed
        state resumes without re-running its entry action."""
        stack = machine._state_stack
        if len(stack) == 1:
            raise FrameworkError(
                f"{machine.id}: pop_state on the bottom state {stack[0]!r}"
            )
        exit_action = machine._spec.exit_actions.get(machine._current_state)
        if exit_action is not None:
            self._run_plain_action(machine, exit_action)
        popped = stack.pop()
        machine._current_state = stack[-1]
        machine._state_ctx = machine._spec.context_for(tuple(stack))
        machine._transition_count += 1
        self.log("{}: popped {} back to {}", machine._id, popped, stack[-1])
        if self.coverage is not None:
            self.coverage.record_transition(type(machine).__name__, popped, stack[-1])

    def record_monitor_state(self, monitor: Monitor, state: str) -> None:
        if state in monitor._hot_states:
            self.log("monitor {} -> {} (hot)", type(monitor).__name__, state)
        else:
            self.log("monitor {} -> {}", type(monitor).__name__, state)
        if self.coverage is not None:
            self.coverage.record_monitor_state(type(monitor).__name__, state)

    def log(self, template: str, *args: Any) -> None:
        """Record a deferred log entry (``str.format`` template + arguments).

        The string is only built when the log is materialized — at bug-record
        time or via :attr:`execution_log` — or immediately when ``verbose``
        mirroring to stdout is enabled.  Call sites therefore pay a tuple
        append, not a ``repr()``, on the no-bug fast path.  The buffer is a
        ring bounded by ``config.max_log_records``.
        """
        self._sink.append((template, *args))

    # ------------------------------------------------------------------
    # enabled-set bookkeeping
    # ------------------------------------------------------------------
    # The runnability predicate (``Machine._has_work``) only changes when a
    # machine's inbox, coroutine or halted flag changes.  Inboxes of *other*
    # machines only ever grow during a step (sends/creates), which can only
    # enable them — handled at enqueue time by ``Machine._enqueue``.  All
    # disabling mutations (dequeue, receive-wait, halt, inbox clear) happen
    # to the machine currently executing a step, so one recheck of that
    # machine after its step keeps the set exact.

    def _mark_enabled(self, machine: Machine) -> None:
        if not machine._enabled:
            machine._enabled = True
            value = machine._id.value
            index = bisect_left(self._enabled_values, value)
            self._enabled_values.insert(index, value)
            self._enabled_ids.insert(index, machine._id)
            self._enabled_dirty = True

    def _mark_disabled(self, machine: Machine) -> None:
        if machine._enabled:
            machine._enabled = False
            index = bisect_left(self._enabled_values, machine._id.value)
            del self._enabled_values[index]
            del self._enabled_ids[index]
            self._enabled_dirty = True

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, test_entry: Callable[["TestRuntime"], None]) -> Optional[BugInfo]:
        """Run one full execution of ``test_entry`` under scheduler control."""
        try:
            test_entry(self)
            self._execution_loop()
            if self.bug is None:
                self._check_end_of_execution()
        except BugError as error:
            self._record_bug(error)
        except MachineHaltRequested:
            raise FrameworkError("halt() called outside of a machine handler")
        if self.bug is not None:
            # Materialize the deferred log exactly once: the bug report and
            # the replayable trace both carry it (JSON-saved traces replay
            # with their execution log intact).
            materialized = self.execution_log
            self.trace.log = materialized
            self.bug.trace = self.trace
            self.bug.log = list(materialized)
        return self.bug

    def _execution_loop(self) -> None:
        # Locals for everything touched once per step: attribute loads in this
        # loop are a measurable fraction of per-execution cost.
        enabled_ids = self._enabled_ids
        machines_by_value = self._machines_by_value
        next_machine = self.strategy.next_machine
        trace_steps_append = self.trace.steps.append
        trace_states_append = self.trace.states.append
        sink_append = self._sink.append
        coverage = self.coverage
        coverage_handled = coverage.handled if coverage is not None else None
        max_steps = self.config.max_steps
        step_count = self.step_count
        while step_count < max_steps:
            if not enabled_ids:
                self.termination_reason = "quiescence"
                return
            # Strategies receive an immutable snapshot, never the live list
            # the bookkeeping maintains; it is rebuilt only on steps where
            # the enabled set changed.
            if self._enabled_dirty:
                snapshot = self._enabled_snapshot = tuple(enabled_ids)
                self._enabled_dirty = False
            else:
                snapshot = self._enabled_snapshot
            chosen_id = next_machine(snapshot, step_count)
            machine = machines_by_value.get(chosen_id.value)
            if machine is None:
                raise FrameworkError(f"strategy chose unknown machine {chosen_id}")
            if not machine._enabled:
                # A known machine that is currently not runnable: scheduling
                # it would dequeue from an empty/unmatched inbox.  That is a
                # strategy bug, not a bug in the system under test.
                raise FrameworkError(
                    f"strategy chose disabled machine {chosen_id}; "
                    f"enabled machines: {[str(mid) for mid in enabled_ids]}"
                )
            # Inlined trace.add_scheduling_choice; _str is the cached str(),
            # and tuple.__new__ skips the NamedTuple __new__ wrapper.  The
            # dispatch state (top of the machine's state stack) is recorded
            # in the parallel ``states`` list so bug reports can show state
            # context per scheduling step.
            trace_steps_append(_new_step(TraceStep, (SCHEDULE, chosen_id.value, chosen_id._str)))
            trace_states_append(machine._current_state)
            # step_count is mirrored back to the instance before any user
            # code can observe it (next_boolean/next_integer read it).
            step_count += 1
            self.step_count = step_count
            # One scheduled step, dispatch inlined (this block runs once per
            # scheduling decision; the call overhead of a _execute_step
            # helper is measurable at Table 2 execution counts).  The common
            # case — a plain event with a cached handler resolution — stays
            # in this frame; coroutine resumption, raised events, control
            # events and state disciplines take the helper/slow paths.
            try:
                if machine._coroutine is not None:
                    self._execute_coroutine_step(machine)
                else:
                    ctx = machine._state_ctx
                    if machine._raised:
                        # The local high-priority queue drains before the
                        # inbox and bypasses defer/ignore disciplines.
                        event = machine._raised.popleft()
                    elif ctx.plain:
                        event = machine._inbox.popleft()
                    else:
                        event = self._dequeue_with_disciplines(machine, ctx)
                    event_type = type(event)
                    if isinstance(event, _CONTROL_EVENTS):
                        self._dispatch_control_event(machine, event)
                    else:
                        actions = ctx.actions
                        try:
                            info = actions[event_type]
                        except KeyError:
                            info = ctx.resolve(event_type)
                        if info is not None and info.__class__ is not HandlerInfo:
                            # DEFER/IGNORE classification can only reach
                            # dispatch for a *raised* event (dequeue already
                            # applied the disciplines): disciplines do not
                            # govern the raised queue, so fall back to
                            # handler-only resolution.
                            info = ctx.handler_only(event_type)
                        if info is None:
                            self._on_unhandled_event(machine, event, event_type)
                        else:
                            sink_append((
                                "{}: handling {!r} in state {!r}",
                                machine._id, event, machine._current_state,
                            ))
                            if coverage_handled is not None:
                                coverage_handled[
                                    (type(machine).__name__, machine._current_state,
                                     event_type.__name__)
                                ] += 1
                            # Bound handlers are cached per machine: a dict
                            # hit instead of descriptor lookup + bound-method
                            # allocation per dispatch.
                            name = info.method_name
                            handler = machine._bound_handlers.get(name)
                            if handler is None:
                                handler = getattr(machine, name)
                                machine._bound_handlers[name] = handler
                            result = handler(event) if info.wants_event else handler()
                            if result is not None:
                                self._maybe_start_coroutine(machine, result)
            except MachineHaltRequested:
                self._halt_machine(machine)
            except BugError as error:
                self._record_bug(error)
                return
            except FrameworkError:
                raise
            except Exception as exc:
                error = UnexpectedExceptionError(
                    f"{machine.id}: unexpected {type(exc).__name__}: {exc}"
                )
                error.__cause__ = exc
                self._record_bug(error)
                return
            # The executed machine is the only one whose runnability can
            # have *decreased* during the step (sends to other machines only
            # enable, handled at enqueue time; state transitions change only
            # its own disciplines), so one recheck keeps the enabled set
            # exact.  The no-receive, no-discipline case of
            # Machine._has_work is unrolled here; blocked-in-receive and
            # discipline-filtered machines take the slow paths.
            if machine._halted:
                has_work = False
            elif machine._pending_receive is None:
                if machine._coroutine is not None or machine._raised:
                    has_work = True
                else:
                    ctx = machine._state_ctx
                    if ctx.plain:
                        has_work = bool(machine._inbox)
                    else:
                        has_work = ctx.any_dequeuable(machine._inbox)
            else:
                has_work = machine._has_work()
            if has_work:
                if not machine._enabled:
                    self._mark_enabled(machine)
            elif machine._enabled:
                self._mark_disabled(machine)
        self.termination_reason = "bound"

    def _dequeue_with_disciplines(self, machine: Machine, ctx) -> Event:
        """Dequeue selection under the current state's event disciplines.

        Scans the inbox front-to-back: ignored events are dropped (and
        logged), deferred events are skipped (they stay queued, in order),
        and the first dequeuable event is removed and returned.  The enabled
        set only admits machines with at least one dequeuable event, so the
        scan finding nothing means the incremental bookkeeping is broken —
        a framework bug, reported as such.
        """
        inbox = machine._inbox
        actions = ctx.actions
        index = 0
        while index < len(inbox):
            event = inbox[index]
            event_type = type(event)
            try:
                action = actions[event_type]
            except KeyError:
                action = ctx.resolve(event_type)
            if action is IGNORE:
                del inbox[index]
                self._sink.append((
                    "{}: ignored {!r} in state {!r}",
                    machine._id, event, machine._current_state,
                ))
                continue
            if action is DEFER:
                index += 1
                continue
            del inbox[index]
            return event
        raise FrameworkError(
            f"{machine.id}: scheduled with no dequeuable event "
            f"(inbox holds only deferred events in state {machine.current_state!r})"
        )

    def _execute_coroutine_step(self, machine: Machine) -> None:
        """Resume a machine whose handler is paused in a generator."""
        if machine._pending_receive is None:
            # Paused at a plain ``yield``: resume at this scheduling point.
            self._advance_coroutine(machine, None)
            return
        event = machine._dequeue_matching(machine._pending_receive)
        self._sink.append(("{}: resumed with {!r}", machine._id, event))
        machine._pending_receive = None
        self._advance_coroutine(machine, event)

    def _dispatch_control_event(self, machine: Machine, event: Event) -> None:
        """Handle the two runtime-control events (Halt, StartEvent)."""
        if isinstance(event, Halt):
            self._halt_machine(machine)
            return
        args, kwargs = getattr(machine, "_start_args", ((), {}))
        self._sink.append(("{}: starting", machine._id))
        initial = machine._current_state
        transitions_before = machine._transition_count
        result = machine.on_start(*args, **kwargs)
        if result is not None:
            self._maybe_start_coroutine(machine, result)
        # The initial state's entry action runs once the machine has started
        # (after ``on_start`` — or its first generator segment — so the
        # fields it initializes are available), unless on_start already
        # transitioned (even away and back: that goto ran the entry action
        # itself) or halted the machine.
        if not machine._halted and machine._transition_count == transitions_before:
            entry_action = machine._spec.entry_actions.get(initial)
            if entry_action is not None:
                self._run_plain_action(machine, entry_action)

    def _on_unhandled_event(self, machine: Machine, event: Event, event_type: type) -> None:
        if machine.ignore_unhandled_events:
            self._sink.append((
                "{}: ignored unhandled {!r} in state {!r}",
                machine._id, event, machine._current_state,
            ))
            return
        raise UnhandledEventError(
            f"{machine.id}: no handler for {event_type.__name__} "
            f"in state {machine.current_state!r}"
        )

    def _maybe_start_coroutine(self, machine: Machine, result: Any) -> None:
        if result is None:
            return
        if isinstance(result, GeneratorType):
            machine._coroutine = result
            self._advance_coroutine(machine, None)
            return
        raise FrameworkError(
            f"{machine.id}: handlers must return None or be generator functions, got {result!r}"
        )

    def _advance_coroutine(self, machine: Machine, value: Any) -> None:
        try:
            yielded = machine._coroutine.send(value)
        except StopIteration:
            machine._coroutine = None
            machine._pending_receive = None
            return
        if isinstance(yielded, Receive):
            machine._pending_receive = yielded
            self.log("{}: waiting for {!r}", machine._id, yielded)
            return
        if yielded is None:
            # A bare ``yield`` is an explicit scheduling point: the machine
            # stays runnable and other machines may interleave here.
            machine._pending_receive = None
            return
        machine._coroutine = None
        raise FrameworkError(
            f"{machine.id}: handlers may only yield Receive objects or None, got {yielded!r}"
        )

    def _run_plain_action(self, machine: Machine, method_name: str) -> None:
        result = getattr(machine, method_name)()
        if result is not None:
            raise FrameworkError(
                f"{machine.id}: entry/exit action {method_name!r} must not be a generator"
            )

    def _halt_machine(self, machine: Machine) -> None:
        if machine._halted:
            return
        machine._halted = True
        if machine._coroutine is not None:
            machine._coroutine.close()
            machine._coroutine = None
        machine._pending_receive = None
        machine._inbox.clear()
        machine._raised.clear()
        self._mark_disabled(machine)
        machine.on_halt()
        self.log("{}: halted", machine._id)

    # ------------------------------------------------------------------
    # end-of-execution checks
    # ------------------------------------------------------------------
    def _check_end_of_execution(self) -> None:
        reason = self.termination_reason
        check_liveness = (
            (reason == "bound" and self.config.check_liveness_at_bound)
            or (reason == "quiescence" and self.config.check_liveness_on_quiescence)
        )
        if check_liveness:
            for monitor in self._monitors.values():
                if type(monitor).is_liveness_monitor() and monitor.is_hot:
                    self._record_bug(
                        LivenessViolationError(
                            f"liveness monitor {type(monitor).__name__} is still in hot state "
                            f"{monitor.current_state!r} at the end of a bounded execution ({reason})"
                        )
                    )
                    return
        if reason == "quiescence" and self.config.report_deadlocks:
            blocked = [
                m for m in self._machines.values()
                if not m.is_halted and m._pending_receive is not None
            ]
            # A machine whose inbox holds deferred events at quiescence is
            # waiting for a transition that will never happen: the deferred
            # analogue of being blocked in receive.  (Ignored-only backlogs
            # are benign — dropping them needs no further progress.)
            defer_stuck = [
                m for m in self._machines.values()
                if not m.is_halted
                and m._pending_receive is None
                and m._inbox
                and any(m._state_ctx.resolve(type(e)) is DEFER for e in m._inbox)
            ]
            if blocked or defer_stuck:
                clauses = []
                if blocked:
                    names = ", ".join(str(m.id) for m in blocked)
                    clauses.append(f"{names} are blocked in receive")
                if defer_stuck:
                    names = ", ".join(
                        f"{m.id} (state {m.current_state!r})" for m in defer_stuck
                    )
                    # "deferred", not "only deferred": the stuck inbox may
                    # also contain ignored (likewise non-dequeuable) events.
                    if len(defer_stuck) == 1:
                        clauses.append(
                            f"the inbox of {names} holds deferred events "
                            f"it can never dequeue"
                        )
                    else:
                        clauses.append(
                            f"the inboxes of {names} hold deferred events "
                            f"they can never dequeue"
                        )
                self._record_bug(
                    DeadlockError("no machine is runnable but " + " and ".join(clauses))
                )

    def _record_bug(self, error: BugError) -> None:
        self.bug = BugInfo(
            kind=error.kind,
            message=str(error),
            step=self.step_count,
            exception=error,
        )
        self.log("BUG ({}): {}", error.kind, error)
