"""The serialized systematic-testing runtime.

The :class:`TestRuntime` owns every machine inbox and executes the whole
system in a single thread.  Every interleaving decision — which machine runs
next, and the value of every controlled boolean/integer choice — is delegated
to a :class:`~repro.core.strategy.base.SchedulingStrategy` and recorded in a
:class:`~repro.core.trace.ScheduleTrace`, so that any execution (in particular
a buggy one) can be replayed deterministically.

One :class:`TestRuntime` instance corresponds to one execution; the
:class:`~repro.core.engine.TestingEngine` creates a fresh runtime per
iteration.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .config import TestingConfig
from .coverage import CoverageTracker
from .errors import (
    BugError,
    DeadlockError,
    FrameworkError,
    LivenessViolationError,
    SafetyViolationError,
    UnexpectedExceptionError,
    UnhandledEventError,
)
from .events import Event, Halt, Receive, StartEvent
from .ids import MachineId
from .machine import Machine, MachineHaltRequested
from .monitors import Monitor
from .strategy.base import SchedulingStrategy
from .trace import ScheduleTrace


@dataclass
class BugInfo:
    """Description of a specification violation found in one execution."""

    kind: str
    message: str
    step: int
    #: the live exception object; process-local, excluded from equality and
    #: JSON serialization so reports round-trip across process boundaries.
    exception: Optional[BaseException] = field(default=None, compare=False)
    trace: Optional[ScheduleTrace] = None
    log: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        return f"[{self.kind}] {self.message} (at step {self.step})"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "message": self.message,
            "step": self.step,
            "trace": self.trace.to_dict() if self.trace is not None else None,
            "log": list(self.log),
        }

    @staticmethod
    def from_dict(payload: dict) -> "BugInfo":
        trace = payload.get("trace")
        return BugInfo(
            kind=payload["kind"],
            message=payload["message"],
            step=int(payload["step"]),
            trace=ScheduleTrace.from_dict(trace) if trace is not None else None,
            log=list(payload.get("log", [])),
        )


class TestRuntime:
    """Single-execution serialized runtime under scheduler control."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        strategy: SchedulingStrategy,
        config: Optional[TestingConfig] = None,
        coverage: Optional[CoverageTracker] = None,
    ) -> None:
        self.config = config or TestingConfig()
        self.strategy = strategy
        self.coverage = coverage
        self.trace = ScheduleTrace()
        self.bug: Optional[BugInfo] = None
        self.step_count = 0
        self.termination_reason: Optional[str] = None

        self._machines: Dict[MachineId, Machine] = {}
        self._monitors: Dict[type, Monitor] = {}
        self._next_machine_value = 0
        self._log: List[str] = []

    # ------------------------------------------------------------------
    # registration API (used by the test entry point and by machines)
    # ------------------------------------------------------------------
    def create_machine(
        self,
        machine_cls: type,
        *args: Any,
        name: str = "",
        creator: Optional[MachineId] = None,
        **kwargs: Any,
    ) -> MachineId:
        """Instantiate ``machine_cls`` and schedule its asynchronous start."""
        if not (isinstance(machine_cls, type) and issubclass(machine_cls, Machine)):
            raise FrameworkError(f"create_machine expects a Machine subclass, got {machine_cls!r}")
        machine_id = MachineId(self._next_machine_value, machine_cls.__name__, name)
        self._next_machine_value += 1
        machine = machine_cls(self, machine_id)
        machine._start_args = (args, kwargs)
        self._machines[machine_id] = machine
        machine._enqueue(StartEvent())
        if self.coverage is not None:
            self.coverage.record_machine(machine_cls.__name__)
        origin = f" by {creator}" if creator is not None else ""
        self.log(f"created {machine_id}{origin}")
        return machine_id

    def register_monitor(self, monitor_cls: type) -> Monitor:
        """Register a safety/liveness monitor for this execution."""
        if not (isinstance(monitor_cls, type) and issubclass(monitor_cls, Monitor)):
            raise FrameworkError(f"register_monitor expects a Monitor subclass, got {monitor_cls!r}")
        if monitor_cls in self._monitors:
            raise FrameworkError(f"monitor {monitor_cls.__name__} is already registered")
        monitor = monitor_cls(self)
        self._monitors[monitor_cls] = monitor
        self.log(f"registered monitor {monitor_cls.__name__}")
        return monitor

    # ------------------------------------------------------------------
    # introspection helpers (useful in tests)
    # ------------------------------------------------------------------
    def machine_instance(self, machine_id: MachineId) -> Machine:
        return self._machines[machine_id]

    def count_pending_events(self, target: MachineId, event_type: type, predicate=None) -> int:
        """Number of events of ``event_type`` currently queued at ``target``.

        Used by modeled environment machines (e.g. the timer) to avoid
        flooding a target's inbox with redundant events, which shrinks the
        explored state space without removing any interleaving of distinct
        events.
        """
        machine = self._machines.get(target)
        if machine is None:
            return 0
        count = 0
        for event in machine._inbox:
            if isinstance(event, event_type) and (predicate is None or predicate(event)):
                count += 1
        return count

    def machines_of_type(self, machine_cls: type) -> List[Machine]:
        return [m for m in self._machines.values() if isinstance(m, machine_cls)]

    def monitor_instance(self, monitor_cls: type) -> Optional[Monitor]:
        return self._monitors.get(monitor_cls)

    @property
    def execution_log(self) -> List[str]:
        return list(self._log)

    # ------------------------------------------------------------------
    # machine-facing services
    # ------------------------------------------------------------------
    def send_event(self, target: MachineId, event: Event, sender: Optional[MachineId] = None) -> None:
        if not isinstance(event, Event):
            raise FrameworkError(f"send expects an Event instance, got {event!r}")
        machine = self._machines.get(target)
        if machine is None:
            raise FrameworkError(f"send to unknown machine {target}")
        source = f"{sender} -> " if sender is not None else ""
        if machine.is_halted:
            self.log(f"dropped {source}{target}: {event!r} (target halted)")
            return
        machine._enqueue(event)
        self.log(f"sent {source}{target}: {event!r}")
        if self.coverage is not None:
            self.coverage.record_event(type(event).__name__)

    def next_boolean(self, requester: MachineId) -> bool:
        value = self.strategy.next_boolean(requester, self.step_count)
        self.trace.add_boolean_choice(value, str(requester))
        return value

    def next_integer(self, requester: MachineId, max_value: int) -> int:
        if max_value < 1:
            raise FrameworkError("next_integer requires max_value >= 1")
        value = self.strategy.next_integer(requester, max_value, self.step_count)
        self.trace.add_integer_choice(value, str(requester))
        return value

    def check_assertion(self, condition: bool, message: str, source: str) -> None:
        if not condition:
            raise SafetyViolationError(f"{source}: assertion failed: {message}")

    def notify_monitor(self, monitor_cls: type, event: Event, source: Optional[MachineId] = None) -> None:
        monitor = self._monitors.get(monitor_cls)
        if monitor is None:
            self.log(f"monitor {monitor_cls.__name__} not registered; dropping {event!r}")
            return
        self.log(f"monitor {monitor_cls.__name__} <- {event!r} (from {source})")
        monitor.handle(event)

    def transition_machine(self, machine: Machine, state: str) -> None:
        spec = type(machine).spec()
        exit_action = spec.exit_actions.get(machine._current_state)
        if exit_action is not None:
            self._run_plain_action(machine, exit_action)
        previous = machine._current_state
        machine._current_state = state
        self.log(f"{machine.id}: {previous} -> {state}")
        if self.coverage is not None:
            self.coverage.record_transition(type(machine).__name__, previous, state)
        entry_action = spec.entry_actions.get(state)
        if entry_action is not None:
            self._run_plain_action(machine, entry_action)

    def record_monitor_state(self, monitor: Monitor, state: str) -> None:
        hot = " (hot)" if state in type(monitor).hot_states else ""
        self.log(f"monitor {type(monitor).__name__} -> {state}{hot}")
        if self.coverage is not None:
            self.coverage.record_monitor_state(type(monitor).__name__, state)

    def log(self, message: str) -> None:
        self._log.append(message)
        if self.config.verbose:
            print(f"[repro] {message}")

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, test_entry: Callable[["TestRuntime"], None]) -> Optional[BugInfo]:
        """Run one full execution of ``test_entry`` under scheduler control."""
        try:
            test_entry(self)
            self._execution_loop()
            if self.bug is None:
                self._check_end_of_execution()
        except BugError as error:
            self._record_bug(error)
        except MachineHaltRequested:
            raise FrameworkError("halt() called outside of a machine handler")
        if self.bug is not None:
            self.bug.trace = self.trace
            self.bug.log = self.execution_log
        return self.bug

    def _execution_loop(self) -> None:
        while self.step_count < self.config.max_steps:
            enabled = [m for m in self._machines.values() if m._has_work()]
            if not enabled:
                self.termination_reason = "quiescence"
                return
            enabled_ids = [m.id for m in enabled]
            chosen_id = self.strategy.next_machine(enabled_ids, self.step_count)
            if chosen_id not in self._machines:
                raise FrameworkError(f"strategy chose unknown machine {chosen_id}")
            self.trace.add_scheduling_choice(chosen_id.value, str(chosen_id))
            self.step_count += 1
            try:
                self._execute_step(self._machines[chosen_id])
            except BugError as error:
                self._record_bug(error)
                return
        self.termination_reason = "bound"

    def _execute_step(self, machine: Machine) -> None:
        try:
            if machine._coroutine is not None:
                if machine._pending_receive is None:
                    # Paused at a plain ``yield``: resume at this scheduling point.
                    self._advance_coroutine(machine, None)
                    return
                event = machine._dequeue_matching(machine._pending_receive)
                self.log(f"{machine.id}: resumed with {event!r}")
                machine._pending_receive = None
                self._advance_coroutine(machine, event)
            else:
                event = machine._inbox.popleft()
                self._dispatch_event(machine, event)
        except MachineHaltRequested:
            self._halt_machine(machine)
        except (BugError, FrameworkError):
            raise
        except Exception as exc:
            raise UnexpectedExceptionError(
                f"{machine.id}: unexpected {type(exc).__name__}: {exc}"
            ) from exc

    def _dispatch_event(self, machine: Machine, event: Event) -> None:
        if isinstance(event, Halt):
            self._halt_machine(machine)
            return
        if isinstance(event, StartEvent):
            args, kwargs = getattr(machine, "_start_args", ((), {}))
            self.log(f"{machine.id}: starting")
            result = machine.on_start(*args, **kwargs)
            self._maybe_start_coroutine(machine, result)
            return
        spec = type(machine).spec()
        info = spec.handler_for(machine.current_state, type(event))
        if info is None:
            if machine.ignore_unhandled_events:
                self.log(f"{machine.id}: ignored unhandled {event!r} in state {machine.current_state!r}")
                return
            raise UnhandledEventError(
                f"{machine.id}: no handler for {type(event).__name__} in state {machine.current_state!r}"
            )
        self.log(f"{machine.id}: handling {event!r} in state {machine.current_state!r}")
        if self.coverage is not None:
            self.coverage.record_handled(type(machine).__name__, machine.current_state, type(event).__name__)
        handler = getattr(machine, info.method_name)
        result = handler(event) if info.wants_event else handler()
        self._maybe_start_coroutine(machine, result)

    def _maybe_start_coroutine(self, machine: Machine, result: Any) -> None:
        if result is None:
            return
        if inspect.isgenerator(result):
            machine._coroutine = result
            self._advance_coroutine(machine, None)
            return
        raise FrameworkError(
            f"{machine.id}: handlers must return None or be generator functions, got {result!r}"
        )

    def _advance_coroutine(self, machine: Machine, value: Any) -> None:
        try:
            yielded = machine._coroutine.send(value)
        except StopIteration:
            machine._coroutine = None
            machine._pending_receive = None
            return
        if isinstance(yielded, Receive):
            machine._pending_receive = yielded
            self.log(f"{machine.id}: waiting for {yielded!r}")
            return
        if yielded is None:
            # A bare ``yield`` is an explicit scheduling point: the machine
            # stays runnable and other machines may interleave here.
            machine._pending_receive = None
            return
        machine._coroutine = None
        raise FrameworkError(
            f"{machine.id}: handlers may only yield Receive objects or None, got {yielded!r}"
        )

    def _run_plain_action(self, machine: Machine, method_name: str) -> None:
        result = getattr(machine, method_name)()
        if result is not None:
            raise FrameworkError(
                f"{machine.id}: entry/exit action {method_name!r} must not be a generator"
            )

    def _halt_machine(self, machine: Machine) -> None:
        if machine.is_halted:
            return
        machine._halted = True
        if machine._coroutine is not None:
            machine._coroutine.close()
            machine._coroutine = None
        machine._pending_receive = None
        machine._inbox.clear()
        machine.on_halt()
        self.log(f"{machine.id}: halted")

    # ------------------------------------------------------------------
    # end-of-execution checks
    # ------------------------------------------------------------------
    def _check_end_of_execution(self) -> None:
        reason = self.termination_reason
        check_liveness = (
            (reason == "bound" and self.config.check_liveness_at_bound)
            or (reason == "quiescence" and self.config.check_liveness_on_quiescence)
        )
        if check_liveness:
            for monitor in self._monitors.values():
                if type(monitor).is_liveness_monitor() and monitor.is_hot:
                    self._record_bug(
                        LivenessViolationError(
                            f"liveness monitor {type(monitor).__name__} is still in hot state "
                            f"{monitor.current_state!r} at the end of a bounded execution ({reason})"
                        )
                    )
                    return
        if reason == "quiescence" and self.config.report_deadlocks:
            blocked = [
                m for m in self._machines.values()
                if not m.is_halted and m._pending_receive is not None
            ]
            if blocked:
                names = ", ".join(str(m.id) for m in blocked)
                self._record_bug(
                    DeadlockError(f"no machine is runnable but {names} are blocked in receive")
                )

    def _record_bug(self, error: BugError) -> None:
        self.bug = BugInfo(
            kind=error.kind,
            message=str(error),
            step=self.step_count,
            exception=error,
        )
        self.log(f"BUG ({error.kind}): {error}")
