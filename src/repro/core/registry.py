"""Declarative registry of test-harness scenarios.

The paper's methodology is a *portfolio*: many harness scenarios, each hunted
with several schedulers.  This module gives every scenario a stable name and
machine-readable metadata so that scenarios can be enumerated
(``python -m repro list-scenarios``), fanned out across strategies and worker
processes (:class:`repro.core.portfolio.Portfolio`), and reconstructed by name
in a different process for replay.

A scenario is registered either with the :func:`scenario` decorator on a
zero-argument factory returning a test entry:

.. code-block:: python

    @scenario("examplesys/safety-bug", tags=("examplesys", "safety"),
              expected_bug_kind="safety", max_steps=600)
    def safety_bug():
        \"\"\"Duplicate-replica-counting safety bug of §2.2.\"\"\"
        return build_replication_test(safety_bug_configuration())

or programmatically with :func:`register` and an explicit :class:`TestCase`
(useful when generating one scenario per bug in a loop).  Names are global and
duplicates raise — collisions are programming errors.
"""

from __future__ import annotations

import importlib
import importlib.util
import os
import sys
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from .config import TestingConfig

#: modules whose import registers the built-in scenarios of the four
#: case-study packages.
BUILTIN_SCENARIO_MODULES = (
    "repro.examplesys.harness.scenarios",
    "repro.examplesys.harness.flushstore",
    "repro.examplesys.harness.service",
    "repro.vnext.harness.scenarios",
    "repro.migratingtable.harness.scenarios",
    "repro.fabric.harness",
)


@dataclass(frozen=True)
class TestCase:
    """A named, tagged, runnable harness scenario.

    Attributes:
        name: globally unique scenario name, conventionally
            ``<package>/<scenario>`` (e.g. ``"vnext/extent-node-liveness"``).
        build: zero-argument factory returning a fresh test entry
            (a callable taking a :class:`~repro.core.runtime.TestRuntime`).
        tags: free-form labels used for filtering (``--tag`` on the CLI);
            every scenario carries its package name as a tag.
        description: one-line human description (defaults to the factory's
            docstring).
        expected_bug: identifier of the seeded bug this scenario can find,
            or None for clean (no-bug-expected) scenarios.
        expected_bug_kind: ``"safety"`` or ``"liveness"`` when a bug is
            expected.
        max_steps: per-execution step bound this harness needs.
        case_study: paper case-study number (1=vNext, 2=MigratingTable,
            3=Fabric), None for the §2.2 example.
    """

    __test__ = False  # not a pytest test class despite the name

    name: str
    build: Callable[[], Callable]
    tags: tuple = ()
    description: str = ""
    expected_bug: Optional[str] = None
    expected_bug_kind: Optional[str] = None
    max_steps: int = 1000
    case_study: Optional[int] = None

    def default_config(self, **overrides) -> TestingConfig:
        """A :class:`TestingConfig` preconfigured with this scenario's bound."""
        overrides.setdefault("max_steps", self.max_steps)
        return TestingConfig(**overrides)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "tags": list(self.tags),
            "description": self.description,
            "expected_bug": self.expected_bug,
            "expected_bug_kind": self.expected_bug_kind,
            "max_steps": self.max_steps,
            "case_study": self.case_study,
            "module": getattr(self.build, "__module__", None),
        }


_SCENARIOS: Dict[str, TestCase] = {}


def register(testcase: TestCase) -> TestCase:
    """Add ``testcase`` to the global registry; duplicate names raise."""
    if testcase.name in _SCENARIOS:
        raise ValueError(f"scenario {testcase.name!r} is already registered")
    _SCENARIOS[testcase.name] = testcase
    return testcase


def scenario(
    name: str,
    *,
    tags: Sequence[str] = (),
    description: Optional[str] = None,
    expected_bug: Optional[str] = None,
    expected_bug_kind: Optional[str] = None,
    max_steps: int = 1000,
    case_study: Optional[int] = None,
):
    """Decorator registering a zero-argument test-entry factory as a scenario.

    The decorated function is returned unchanged (it stays directly callable)
    with the created :class:`TestCase` attached as ``.testcase``.
    """

    def decorator(build: Callable[[], Callable]) -> Callable[[], Callable]:
        doc = (build.__doc__ or "").strip().splitlines()
        testcase = TestCase(
            name=name,
            build=build,
            tags=tuple(tags),
            description=description if description is not None else (doc[0] if doc else ""),
            expected_bug=expected_bug,
            expected_bug_kind=expected_bug_kind,
            max_steps=max_steps,
            case_study=case_study,
        )
        register(testcase)
        build.testcase = testcase
        return build

    return decorator


def get_scenario(name: str) -> TestCase:
    """Look up a registered scenario; unknown names list what is registered."""
    load_builtin_scenarios()
    if name not in _SCENARIOS:
        known = ", ".join(sorted(_SCENARIOS)) or "(none)"
        raise KeyError(f"unknown scenario {name!r}; registered scenarios: {known}")
    return _SCENARIOS[name]


def all_scenarios(*, tag: Optional[str] = None) -> List[TestCase]:
    """Every registered scenario in name order, optionally filtered by tag."""
    load_builtin_scenarios()
    cases = sorted(_SCENARIOS.values(), key=lambda c: c.name)
    if tag is not None:
        cases = [c for c in cases if tag in c.tags]
    return cases


def load_builtin_scenarios() -> None:
    """Import the case-study harness modules so they self-register.

    Imports are idempotent, so calling this repeatedly (including from
    portfolio worker processes) is cheap and safe.
    """
    for module in BUILTIN_SCENARIO_MODULES:
        importlib.import_module(module)


def import_scenario_modules(specs: Optional[Sequence[str]]) -> None:
    """Import user modules so their ``@scenario``/``@register_strategy`` run.

    Accepts dotted module names or paths to ``.py`` files (e.g.
    ``examples/quickstart.py``).  Used by the CLI's ``--import`` option and
    re-run inside portfolio worker processes: under the ``spawn`` start
    method a fresh interpreter knows nothing about the parent's imports, so
    every job carries its import specs and replays them before looking up
    its scenario by name.  Already-loaded modules are skipped (registration
    is global), which makes re-importing idempotent in forked and in-process
    workers too.
    """
    for spec in specs or []:
        if spec.endswith(".py"):
            name = os.path.splitext(os.path.basename(spec))[0]
            if name in sys.modules:  # already loaded; registration is global
                continue
            module_spec = importlib.util.spec_from_file_location(name, spec)
            if module_spec is None or module_spec.loader is None:
                raise ValueError(f"cannot import {spec!r}")
            module = importlib.util.module_from_spec(module_spec)
            sys.modules[name] = module
            module_spec.loader.exec_module(module)
        else:
            importlib.import_module(spec)
