"""Parallel portfolio testing engine.

The paper's evaluation runs a *portfolio* of schedulers over each harness:
different strategies excel at different bugs, and independent seed shards
multiply throughput.  :class:`Portfolio` fans one registered scenario out
across ``strategies × seed shards`` jobs, executes them serially or on a
``multiprocessing`` pool, and merges the per-job :class:`TestReport`s into a
deterministic :class:`PortfolioReport`:

* job enumeration order is fixed (strategy order, then shard index), and
  results are merged in that order regardless of which worker finished first,
  so two runs with the same seeds produce the same merged report (modulo wall
  times);
* the "winning" bug is the one of the lowest-numbered job that found any, not
  the one that happened to cross the finish line first;
* reports serialize to JSON (traces included), so a portfolio result written
  by ``python -m repro run`` replays later via ``python -m repro replay``.

Workers rebuild the scenario *by name* from :mod:`repro.core.registry`, which
is what makes cross-process execution (and cross-process replay) possible
without pickling closures.  Scenarios registered by user modules (the CLI's
``--import``) are included: every job carries its import specs, and the
worker re-imports them before the registry lookup, so portfolios work under
the ``spawn`` start method (the default on macOS and Windows, where a fresh
worker interpreter knows nothing about the parent's imports) exactly as they
do under ``fork``.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from .config import TestingConfig
from .coverage import CoverageTracker
from .engine import TestingEngine, TestReport
from .registry import TestCase, get_scenario, import_scenario_modules
from .runtime import BugInfo
from .shrink import ShrinkResult
from .trace import ScheduleTrace


@dataclass(frozen=True)
class PortfolioJob:
    """One (scenario, strategy, seed shard) work unit.

    ``imports`` lists the modules/files whose import registered the scenario
    (empty for builtins); workers replay them so the job is self-contained
    under every multiprocessing start method.
    """

    index: int
    scenario: str
    strategy: str
    seed: int
    config: TestingConfig
    imports: tuple = ()

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "scenario": self.scenario,
            "strategy": self.strategy,
            "seed": self.seed,
            "config": self.config.to_dict(),
            "imports": list(self.imports),
        }

    @staticmethod
    def from_dict(payload: dict) -> "PortfolioJob":
        return PortfolioJob(
            index=payload["index"],
            scenario=payload["scenario"],
            strategy=payload["strategy"],
            seed=payload["seed"],
            config=TestingConfig.from_dict(payload["config"]),
            imports=tuple(payload.get("imports", ())),
        )


@dataclass
class JobResult:
    """The report one job produced."""

    job: PortfolioJob
    report: TestReport

    def to_dict(self) -> dict:
        return {"job": self.job.to_dict(), "report": self.report.to_dict()}

    @staticmethod
    def from_dict(payload: dict) -> "JobResult":
        return JobResult(
            job=PortfolioJob.from_dict(payload["job"]),
            report=TestReport.from_dict(payload["report"]),
        )


@dataclass
class PortfolioReport:
    """Deterministically merged outcome of a portfolio run."""

    scenario: str
    results: List[JobResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    num_workers: int = 1

    @property
    def bug_found(self) -> bool:
        return any(result.report.bug_found for result in self.results)

    @property
    def winning_result(self) -> Optional[JobResult]:
        """The lowest-numbered job that found a bug (deterministic)."""
        for result in self.results:
            if result.report.bug_found:
                return result
        return None

    @property
    def first_bug(self) -> Optional[BugInfo]:
        winner = self.winning_result
        return winner.report.first_bug if winner is not None else None

    @property
    def total_iterations(self) -> int:
        return sum(result.report.iterations_executed for result in self.results)

    @property
    def merged_coverage(self) -> CoverageTracker:
        """Coverage aggregated across every worker's report (job-index order)."""
        merged = CoverageTracker()
        for result in self.results:
            merged.merge(result.report.coverage)
        return merged

    def summary(self) -> str:
        strategies = sorted({result.job.strategy for result in self.results})
        base = (
            f"portfolio[{', '.join(strategies)}] on {self.scenario!r}: "
            f"{len(self.results)} jobs, {self.total_iterations} executions "
            f"in {self.elapsed_seconds:.2f}s ({self.num_workers} workers)"
        )
        distinct_states = len(self.merged_coverage.fingerprints)
        if distinct_states:
            base = f"{base}, {distinct_states} distinct states"
        winner = self.winning_result
        if winner is None:
            return f"{base} — no bug found"
        bug = winner.report.first_bug
        shrink_note = f" [{bug.shrink.summary()}]" if bug.shrink is not None else ""
        return (
            f"{base} — bug found by job #{winner.job.index} "
            f"({winner.job.strategy}, seed {winner.job.seed}): "
            f"{bug.message}{shrink_note}"
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "results": [result.to_dict() for result in self.results],
            "elapsed_seconds": self.elapsed_seconds,
            "num_workers": self.num_workers,
        }

    @staticmethod
    def from_dict(payload: dict) -> "PortfolioReport":
        return PortfolioReport(
            scenario=payload["scenario"],
            results=[JobResult.from_dict(entry) for entry in payload.get("results", [])],
            elapsed_seconds=payload.get("elapsed_seconds", 0.0),
            num_workers=payload.get("num_workers", 1),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @staticmethod
    def from_json(text: str) -> "PortfolioReport":
        return PortfolioReport.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @staticmethod
    def load(path: str) -> "PortfolioReport":
        with open(path, "r", encoding="utf-8") as handle:
            return PortfolioReport.from_json(handle.read())


# ---------------------------------------------------------------------------
# worker entry point (top-level so it pickles under every start method)
# ---------------------------------------------------------------------------
def _execute_job(payload: dict) -> dict:
    """Run one job in a (possibly separate) process; returns a JSON-safe dict.

    The result is tagged with the job index because the pool streams results
    back in completion order (``imap_unordered``), not submission order.
    """
    job = PortfolioJob.from_dict(payload)
    # Replay the parent's --import registrations first: a spawn-started
    # worker is a fresh interpreter that only knows the builtin scenarios,
    # so get_scenario() on a user scenario would otherwise raise KeyError.
    import_scenario_modules(job.imports)
    testcase = get_scenario(job.scenario)
    report = TestingEngine(testcase.build(), job.config).run()
    return {"index": job.index, "report": report.to_dict()}


def merge_results(jobs: Sequence[PortfolioJob], reports: Sequence[TestReport]) -> List[JobResult]:
    """Pair jobs with their reports and order them by job index.

    The merge is a pure function of its inputs: however the (job, report)
    pairs arrive — serial loop, pool workers racing, results shuffled on the
    way back — the output list is sorted by the deterministic job index.
    """
    if len(jobs) != len(reports):
        raise ValueError(f"got {len(reports)} reports for {len(jobs)} jobs")
    paired = [JobResult(job=job, report=report) for job, report in zip(jobs, reports)]
    return sorted(paired, key=lambda result: result.job.index)


class Portfolio:
    """Fan one scenario out across strategies × seed shards.

    Args:
        scenario: a registered scenario name or a :class:`TestCase`.
        strategies: strategy names to run (each must be registered).
        iterations: *total* execution budget, split evenly across the shards
            of each strategy (each strategy gets the full budget).
        num_shards: seed shards per strategy; defaults to ``num_workers``.
        num_workers: processes to run jobs on; 1 means serial in-process.
        seed: base seed; shard ``s`` uses ``seed + s``.
        config: template :class:`TestingConfig`; per-job copies override
            ``strategy``/``seed``/``iterations``.  Defaults to the scenario's
            :meth:`~repro.core.registry.TestCase.default_config`.
        imports: module names / ``.py`` paths whose import registers the
            scenario (for user scenarios loaded via ``--import``); carried in
            every job payload and re-imported by workers, which is what makes
            the portfolio work under the ``spawn`` start method.
        start_method: multiprocessing start method for the worker pool
            (``"fork"``, ``"spawn"``, ``"forkserver"``); None uses the
            platform default.
        shrink: when True, the winning bug trace (lowest-numbered job that
            found one) is minimized with :class:`~repro.core.shrink.Shrinker`
            before the reports are merged, so the saved report already
            carries ``shrunk_trace`` and its shrink statistics.
        stop_on_first_bug: cancel the jobs still running (or not yet
            started) as soon as any job completes with a bug.  Cancelled
            jobs appear in the merged report as zero-execution placeholder
            reports, so job numbering — and therefore the winner, the
            lowest-numbered *completed* job that found a bug — stays
            deterministic given the same set of completed jobs.
    """

    def __init__(
        self,
        scenario: "str | TestCase",
        strategies: Sequence[str] = ("random", "pct"),
        iterations: int = 100,
        num_shards: Optional[int] = None,
        num_workers: int = 1,
        seed: int = 0,
        config: Optional[TestingConfig] = None,
        imports: Sequence[str] = (),
        start_method: Optional[str] = None,
        shrink: bool = False,
        stop_on_first_bug: bool = False,
    ) -> None:
        self.testcase = scenario if isinstance(scenario, TestCase) else get_scenario(scenario)
        if not strategies:
            raise ValueError("a portfolio needs at least one strategy")
        self.strategies = list(strategies)
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations
        self.num_workers = max(1, num_workers)
        self.num_shards = num_shards if num_shards is not None else self.num_workers
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.seed = seed
        self.config = config if config is not None else self.testcase.default_config()
        self.imports = tuple(imports)
        self.start_method = start_method
        self.shrink = shrink
        self.stop_on_first_bug = stop_on_first_bug

    # ------------------------------------------------------------------
    def jobs(self) -> List[PortfolioJob]:
        """Deterministic job enumeration: strategy order, then shard index."""
        # A budget smaller than the shard count drops the surplus shards:
        # every job must run at least one iteration, and the shard budgets
        # must sum exactly to the requested total.
        num_shards = min(self.num_shards, self.iterations)
        base, remainder = divmod(self.iterations, num_shards)
        jobs: List[PortfolioJob] = []
        for strategy in self.strategies:
            for shard in range(num_shards):
                iterations = base + (1 if shard < remainder else 0)
                jobs.append(
                    PortfolioJob(
                        index=len(jobs),
                        scenario=self.testcase.name,
                        strategy=strategy,
                        seed=self.seed + shard,
                        config=replace(
                            self.config,
                            strategy=strategy,
                            seed=self.seed + shard,
                            iterations=iterations,
                        ),
                        imports=self.imports,
                    )
                )
        return jobs

    def run(self) -> PortfolioReport:
        """Execute every job and return the deterministically merged report."""
        jobs = self.jobs()
        started = time.perf_counter()
        payloads = [job.to_dict() for job in jobs]
        completed: Dict[int, dict] = {}
        if self.num_workers == 1 or len(jobs) == 1:
            for payload in payloads:
                result = _execute_job(payload)
                completed[result["index"]] = result["report"]
                if self.stop_on_first_bug and result["report"].get("bugs"):
                    break
        else:
            context = (
                multiprocessing.get_context(self.start_method)
                if self.start_method is not None
                else multiprocessing
            )
            with context.Pool(processes=min(self.num_workers, len(jobs))) as pool:
                # Stream results in completion order so one bug-finding job
                # can cancel its still-running siblings; leaving the with
                # block after the break terminates the pool's outstanding
                # workers instead of waiting for them.
                for result in pool.imap_unordered(_execute_job, payloads):
                    completed[result["index"]] = result["report"]
                    if self.stop_on_first_bug and result["report"].get("bugs"):
                        break
        reports = [
            TestReport.from_dict(completed[job.index])
            if job.index in completed
            else self._cancelled_report(job)
            for job in jobs
        ]
        if self.shrink:
            self._shrink_winning_bug(jobs, reports)
        return PortfolioReport(
            scenario=self.testcase.name,
            results=merge_results(jobs, reports),
            elapsed_seconds=time.perf_counter() - started,
            num_workers=self.num_workers,
        )

    @staticmethod
    def _cancelled_report(job: PortfolioJob) -> TestReport:
        """Placeholder for a job cancelled by ``stop_on_first_bug``: zero
        executions, so it can never displace a completed job as the winner
        and the merged iteration totals count only real work."""
        return TestReport(
            strategy=job.strategy,
            iterations_requested=job.config.iterations,
            iterations_executed=0,
        )

    def _shrink_winning_bug(
        self, jobs: Sequence[PortfolioJob], reports: Sequence[TestReport]
    ) -> Optional[ShrinkResult]:
        """Minimize the winning bug trace in place, before the merge.

        The winner is the same bug :attr:`PortfolioReport.winning_result`
        will select — the first bug of the lowest-numbered job that found one
        — so the shrink effort goes exactly to the trace users will replay.
        Runs in the parent process: one bug, one deterministic shrink.
        """
        for job, report in sorted(zip(jobs, reports), key=lambda pair: pair[0].index):
            bug = report.first_bug
            if bug is not None and bug.trace is not None:
                engine = TestingEngine(self.testcase.build(), job.config)
                return engine.shrink_bug(bug)
        return None


# ---------------------------------------------------------------------------
# convenience entry points
# ---------------------------------------------------------------------------
def run_scenario(
    name: str, config: Optional[TestingConfig] = None, **config_overrides
) -> TestReport:
    """Run one registered scenario with a single strategy (serial)."""
    testcase = get_scenario(name)
    if config is not None and config_overrides:
        raise ValueError(
            "pass either an explicit config or keyword overrides, not both: "
            f"got config and {sorted(config_overrides)}"
        )
    if config is None:
        config = testcase.default_config(**config_overrides)
    return TestingEngine(testcase.build(), config).run()


def replay_bug(
    scenario: str, bug: BugInfo, config: Optional[TestingConfig] = None
) -> Optional[BugInfo]:
    """Re-execute a recorded bug trace against its scenario, by name."""
    if bug.trace is None:
        raise ValueError("bug has no recorded trace to replay")
    return replay_trace(scenario, bug.trace, config)


def replay_trace(
    scenario: str, trace: ScheduleTrace, config: Optional[TestingConfig] = None
) -> Optional[BugInfo]:
    """Deterministically re-execute ``trace`` against a registered scenario."""
    testcase = get_scenario(scenario)
    if config is None:
        config = testcase.default_config()
    return TestingEngine(testcase.build(), config).replay(trace)
