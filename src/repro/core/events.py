"""Event types exchanged between machines.

Events are plain Python objects.  Subclass :class:`Event` and add whatever
payload fields the event carries; the base class provides a readable ``repr``
and value-style equality, which makes traces and test assertions pleasant to
work with.
"""

from __future__ import annotations

from typing import Any


class Event:
    """Base class for every event exchanged between machines.

    Subclasses typically set payload attributes in ``__init__``::

        class ClientRequest(Event):
            def __init__(self, payload):
                self.payload = payload
    """

    def _fields(self) -> dict[str, Any]:
        return {k: v for k, v in vars(self).items() if not k.startswith("_")}

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v!r}" for k, v in self._fields().items())
        return f"{type(self).__name__}({fields})"

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return self._fields() == other._fields()  # type: ignore[union-attr]

    def __hash__(self) -> int:
        return hash((type(self), tuple(sorted(self._fields().items(), key=lambda kv: kv[0]))))


class Halt(Event):
    """Built-in event that terminates the receiving machine.

    Sending :class:`Halt` to a machine asks it to stop: when the event is
    dequeued the machine's ``on_halt`` hook runs and the machine is removed
    from the set of schedulable machines.  Events sent to a halted machine are
    silently dropped (and logged), mirroring message loss to a dead node.
    """


class StartEvent(Event):
    """Internal event delivered to a machine when it starts executing.

    Machine creation is asynchronous: creating a machine enqueues a
    :class:`StartEvent` in the new machine's inbox, and the scheduler decides
    when the machine actually begins running its ``on_start`` hook.  This
    makes machine start-up itself an explored interleaving, exactly as in P#.
    """


class TimerTick(Event):
    """Generic timeout event produced by the modeled :class:`~repro.core.timer.TimerMachine`."""

    def __init__(self, timer_name: str = "timer") -> None:
        self.timer_name = timer_name


class Receive:
    """Yielded from a generator handler to block until a matching event arrives.

    Example::

        def on_start(self):
            request = yield Receive(ClientRequest)
            ...

    ``event_types`` restricts which event classes satisfy the receive; an
    optional ``predicate`` adds a further filter on the event instance.  The
    machine is only schedulable while a matching event sits in its inbox.

    ``predicate`` must be a pure function of the event it is given: the
    runtime maintains the enabled set incrementally and evaluates the
    predicate when an event is *enqueued*, so a predicate whose answer
    depends on mutable state outside the event could leave a machine's
    runnability stale.  (No modeled system should need such a predicate —
    machines share no state by construction.)
    """

    def __init__(self, *event_types: type, predicate=None) -> None:
        if not event_types:
            raise ValueError("Receive requires at least one event type")
        for event_type in event_types:
            if not (isinstance(event_type, type) and issubclass(event_type, Event)):
                raise TypeError(f"Receive expects Event subclasses, got {event_type!r}")
        self.event_types = event_types
        self.predicate = predicate

    def matches(self, event: Event) -> bool:
        if not isinstance(event, self.event_types):
            return False
        if self.predicate is not None and not self.predicate(event):
            return False
        return True

    def __repr__(self) -> str:
        names = ", ".join(t.__name__ for t in self.event_types)
        return f"Receive({names})"
