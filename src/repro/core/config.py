"""Testing configuration."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class TestingConfig:
    """Configuration of a systematic testing session.

    ``__test__`` is False so pytest does not try to collect this class.

    Attributes:
        iterations: number of executions to explore (the paper used 100,000).
        max_steps: bound after which an execution is treated as "infinite"
            for liveness checking (§2.5) and cut off.
        strategy: name of the scheduling strategy (``"random"``, ``"pct"``,
            ``"round-robin"``, ``"dfs"``).
        seed: base random seed; iteration ``i`` uses ``seed + i``, which makes
            every run of the engine fully reproducible.
        pct_priority_switches: number of priority change points per execution
            for the priority-based scheduler (the paper used 2).
        pct_fair_suffix: if true, the priority-based scheduler falls back to
            fair random scheduling after ``max_steps // 5`` steps so that
            liveness checking is meaningful (the approach used by fair-PCT
            schedulers in practice).  Liveness results are only sound under
            fair schedules, so clean-run validation should prefer the random
            scheduler.
        check_liveness_at_bound: report a liveness violation when a liveness
            monitor is hot at the step bound.
        check_liveness_on_quiescence: report a liveness violation when the
            system has no runnable machine but a liveness monitor is hot.
        report_deadlocks: treat "no runnable machine while some machine is
            blocked in a receive" as a bug.
        stop_at_first_bug: stop the engine as soon as one bug is found.
        verbose: mirror the execution log to stdout while running.  Verbose
            runs pay the string-formatting cost per log call; non-verbose
            runs defer all formatting until a bug is recorded.
        max_log_records: capacity of the runtime's deferred-log ring buffer.
            Only the most recent entries are kept; bug reports carry this
            tail of the execution log.  Raising it buys more bug context at
            the price of memory per in-flight execution.
        shrink_max_replays: candidate-replay budget of the trace shrinker
            (:mod:`repro.core.shrink`); each candidate costs one controlled
            execution, so this bounds the worst-case cost of ``shrink=True``
            runs and of ``python -m repro shrink``.
        independence: statically computed independence table consumed by the
            ``dpor-lite`` strategy (the JSON-safe dict produced by
            :func:`repro.analysis.independence.build_independence_table`).
            ``None`` (the default) disables dependence-aware pruning:
            ``dpor-lite`` then degenerates to plain ``dfs``.
        fingerprints: maintain the incremental execution fingerprint
            (:mod:`repro.core.fingerprint`) and collect the distinct
            fingerprints seen into ``CoverageTracker.fingerprints``.  Off by
            default: fingerprinting hashes event payloads and machine
            attributes on every step, which the no-bug hot path otherwise
            never pays for.
        stateful: let the DFS-family strategies (``dfs``, ``dpor-lite``)
            prune schedules that revisit an already fully-explored global
            state (implies fingerprint maintenance for those strategies).
            Dedupe only ever acts on *exact* fingerprints, so inexactly
            encodable harnesses degrade to plain search, never to unsound
            pruning.
        extra: per-strategy option namespaces, keyed by strategy name
            (e.g. ``extra["pct"] = {"priority_switches": 4}``); consumed by
            each strategy's ``from_config``.
    """

    __test__ = False  # not a pytest test class despite the name

    iterations: int = 100
    max_steps: int = 1000
    strategy: str = "random"
    seed: int = 0
    pct_priority_switches: int = 2
    pct_fair_suffix: bool = True
    check_liveness_at_bound: bool = True
    check_liveness_on_quiescence: bool = True
    report_deadlocks: bool = True
    stop_at_first_bug: bool = True
    verbose: bool = False
    max_log_records: int = 8192
    max_bugs: Optional[int] = None
    shrink_max_replays: int = 500
    independence: Optional[dict] = None
    fingerprints: bool = False
    stateful: bool = False
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(payload: dict) -> "TestingConfig":
        known = {f.name for f in dataclasses.fields(TestingConfig)}
        return TestingConfig(**{k: v for k, v in payload.items() if k in known})

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        if self.pct_priority_switches < 0:
            raise ValueError("pct_priority_switches must be >= 0")
        if self.max_log_records < 1:
            raise ValueError("max_log_records must be >= 1")
        if self.shrink_max_replays < 1:
            raise ValueError("shrink_max_replays must be >= 1")
