"""Declarative state-machine metadata for machines and monitors.

Handlers are declared with decorators::

    class Server(Machine):
        initial_state = "listening"

        @on_event(ClientRequest, state="listening")
        def handle_request(self, event):
            ...

        @on_entry("closing")
        def announce_closing(self):
            ...

A handler declared without a ``state`` argument applies to every state that
does not override it with a state-specific handler.  The metadata collected
here is also what :mod:`repro.core.statistics` inspects to produce the
Table 1 modeling-cost statistics.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

#: Sentinel state name used for handlers that apply to every state.
ANY_STATE = "*"

_HANDLER_ATTR = "_repro_event_handlers"
_ENTRY_ATTR = "_repro_entry_states"
_EXIT_ATTR = "_repro_exit_states"


def on_event(*event_types: type, state: Optional[str] = None) -> Callable:
    """Register the decorated method as the handler for ``event_types``.

    If ``state`` is given the handler only applies in that state; otherwise it
    applies in any state that does not declare a more specific handler.
    """
    if not event_types:
        raise TypeError("on_event requires at least one event type")

    def decorator(func: Callable) -> Callable:
        registrations = list(getattr(func, _HANDLER_ATTR, []))
        for event_type in event_types:
            registrations.append((event_type, state if state is not None else ANY_STATE))
        setattr(func, _HANDLER_ATTR, registrations)
        return func

    return decorator


def on_entry(state: str) -> Callable:
    """Register the decorated method as the entry action of ``state``."""

    def decorator(func: Callable) -> Callable:
        states = list(getattr(func, _ENTRY_ATTR, []))
        states.append(state)
        setattr(func, _ENTRY_ATTR, states)
        return func

    return decorator


def on_exit(state: str) -> Callable:
    """Register the decorated method as the exit action of ``state``."""

    def decorator(func: Callable) -> Callable:
        states = list(getattr(func, _EXIT_ATTR, []))
        states.append(state)
        setattr(func, _EXIT_ATTR, states)
        return func

    return decorator


@dataclass
class HandlerInfo:
    """A single (state, event-type) -> method binding."""

    method_name: str
    event_type: type
    state: str
    wants_event: bool


@dataclass
class StateMachineSpec:
    """Static description of a machine or monitor class.

    ``handlers`` maps ``(state, event_type)`` to :class:`HandlerInfo`;
    ``entry_actions``/``exit_actions`` map state name to method name.
    """

    owner_name: str
    handlers: dict = field(default_factory=dict)
    entry_actions: dict = field(default_factory=dict)
    exit_actions: dict = field(default_factory=dict)
    #: memoized ``(state, event_type) -> Optional[HandlerInfo]`` resolutions;
    #: dispatch is a hot path, and resolution (wildcard states, base-class
    #: matches) is pure, so every answer — including "no handler" — is cached.
    _resolution_cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def states(self) -> set:
        found = set()
        for state, _event_type in self.handlers:
            if state != ANY_STATE:
                found.add(state)
        found.update(self.entry_actions)
        found.update(self.exit_actions)
        return found

    @property
    def action_handler_count(self) -> int:
        """Number of distinct action handlers (event handlers + entry/exit)."""
        methods = {info.method_name for info in self.handlers.values()}
        methods.update(self.entry_actions.values())
        methods.update(self.exit_actions.values())
        return len(methods)

    def handler_for(self, state: str, event_type: type) -> Optional[HandlerInfo]:
        """Resolve the handler for ``event_type`` while in ``state``.

        Resolution prefers a state-specific handler for the exact event type,
        then a state-specific handler for a base type, then wildcard-state
        handlers with the same precedence.  Results are memoized per
        ``(state, event_type)`` pair, so repeated dispatch of the same event
        type in the same state costs one dict lookup.
        """
        key = (state, event_type)
        try:
            return self._resolution_cache[key]
        except KeyError:
            pass
        info = self._resolve_handler(state, event_type)
        self._resolution_cache[key] = info
        return info

    def _resolve_handler(self, state: str, event_type: type) -> Optional[HandlerInfo]:
        for candidate_state in (state, ANY_STATE):
            info = self.handlers.get((candidate_state, event_type))
            if info is not None:
                return info
        for candidate_state in (state, ANY_STATE):
            for (bound_state, bound_type), info in self.handlers.items():
                if bound_state == candidate_state and issubclass(event_type, bound_type):
                    return info
        return None


def _wants_event(func: Callable) -> bool:
    parameters = [
        p
        for p in inspect.signature(func).parameters.values()
        if p.name != "self" and p.kind not in (p.VAR_KEYWORD, p.VAR_POSITIONAL)
    ]
    return len(parameters) >= 1


def build_spec(cls: type) -> StateMachineSpec:
    """Collect the decorator metadata declared on ``cls`` and its bases."""
    spec = StateMachineSpec(owner_name=cls.__name__)
    for klass in reversed(cls.__mro__):
        for attr_name, attr in vars(klass).items():
            if not callable(attr):
                continue
            for event_type, state in getattr(attr, _HANDLER_ATTR, []):
                spec.handlers[(state, event_type)] = HandlerInfo(
                    method_name=attr_name,
                    event_type=event_type,
                    state=state,
                    wants_event=_wants_event(attr),
                )
            for state in getattr(attr, _ENTRY_ATTR, []):
                spec.entry_actions[state] = attr_name
            for state in getattr(attr, _EXIT_ATTR, []):
                spec.exit_actions[state] = attr_name
    return spec


def iter_handled_event_types(spec: StateMachineSpec) -> Iterable[type]:
    seen = set()
    for (_state, event_type) in spec.handlers:
        if event_type not in seen:
            seen.add(event_type)
            yield event_type
