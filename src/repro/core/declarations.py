"""Declarative state-machine metadata for machines and monitors.

Two declaration forms lower to the same :class:`StateMachineSpec`.

**The State DSL** (preferred): machines declare nested :class:`State`
subclasses carrying their handlers and per-state event disciplines, exactly
like P# machines declare ``[OnEventDoAction]`` / ``[DeferEvents]`` /
``[IgnoreEvents]`` attributes on state classes::

    >>> from repro.core.events import Event
    >>> class Knock(Event): pass
    >>> class Wind(Event): pass
    >>> class Door:
    ...     class Closed(State, initial=True):
    ...         deferred = (Wind,)            # keep in inbox until un-deferred
    ...         @on_event(Knock)
    ...         def open_up(self, event):
    ...             self.goto(Door.Open)
    ...     class Open(State):
    ...         ignored = (Knock,)            # drop silently at dequeue time
    ...         @on_event(Wind)
    ...         def blow_shut(self, event):
    ...             self.goto(Door.Closed)
    ...         def on_entry(self):
    ...             pass
    >>> spec = build_spec(Door)
    >>> spec.initial_state
    'Closed'
    >>> sorted(spec.states)
    ['Closed', 'Open']
    >>> ctx = spec.context_for(('Closed',))
    >>> ctx.dequeuable(Wind)                  # deferred: not dequeuable
    False
    >>> ctx.dequeuable(Knock)
    True
    >>> spec.context_for(('Open',)).resolve(Knock) is IGNORE
    True

**The legacy string-state form** remains fully supported (it is a thin
compatibility shim over the same spec)::

    class Server(Machine):
        initial_state = "listening"

        @on_event(ClientRequest, state="listening")
        def handle_request(self, event):
            ...

        @on_entry("closing")
        def announce_closing(self):
            ...

Both forms may be mixed on one class: a handler declared without a ``state``
argument applies in every state that does not resolve the event itself
(including every state of the P#-style state *stack*, see
:meth:`StateMachineSpec.context_for`).  The metadata collected here is also
what :mod:`repro.core.statistics` inspects to produce the Table 1
modeling-cost statistics.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Tuple, Union

#: Sentinel state name used for handlers that apply to every state.
ANY_STATE = "*"

_HANDLER_ATTR = "_repro_event_handlers"
_ENTRY_ATTR = "_repro_entry_states"
_EXIT_ATTR = "_repro_exit_states"
#: per-class set of attribute names hoisted from nested State bodies; the
#: spec builder must skip them (the functions still carry their @on_event
#: metadata, which would otherwise re-register them as wildcard handlers
#: when a subclass's spec walks this class's dict).
_HOISTED_ATTR = "_repro_hoisted_names"


class _Discipline:
    """Classification sentinel returned by :meth:`StateContext.resolve`."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return f"<{self._name}>"


#: Classification of an event the current state keeps queued for later.
DEFER = _Discipline("DEFER")
#: Classification of an event the current state drops at dequeue time.
IGNORE = _Discipline("IGNORE")


class State:
    """Base class for first-class state declarations nested in a machine.

    Subclass :class:`State` *inside* a machine (or monitor) class body and
    declare, per state:

    * event handlers with :func:`on_event` (no ``state=`` argument — the
      enclosing state is implied);
    * ``deferred = (EventT, ...)`` — events kept in the inbox, invisible to
      dequeue, until a transition to a state that no longer defers them;
    * ``ignored = (EventT, ...)`` — events silently dropped at dequeue time;
    * ``on_entry(self)`` / ``on_exit(self)`` methods — entry and exit actions
      (run with the *machine* as ``self``, like every handler).

    Class keywords:

    * ``initial=True`` marks the machine's start state (exactly one per
      class; overrides the legacy ``initial_state`` string attribute);
    * ``name="..."`` overrides the state's name (defaults to the class name);
    * ``hot=True`` marks a liveness-monitor state as hot (merged into the
      monitor's ``hot_states``).
    """

    #: Event types kept queued (not dequeuable) while this state is active.
    deferred: tuple = ()
    #: Event types silently dropped at dequeue time while this state is active.
    ignored: tuple = ()

    def __init_subclass__(
        cls, *, name: Optional[str] = None, initial: bool = False, hot: bool = False, **kwargs
    ) -> None:
        super().__init_subclass__(**kwargs)
        cls._state_name = name if name is not None else cls.__name__
        cls._state_initial = bool(initial)
        cls._state_hot = bool(hot)

    def __init__(self) -> None:  # pragma: no cover - declaration-only class
        raise TypeError(
            f"State subclass {type(self).__name__} is declarative and is never instantiated"
        )


#: What ``goto``/``push_state`` accept: a state name or a State subclass.
StateRef = Union[str, type]


def resolve_state_name(state: StateRef) -> str:
    """The state name denoted by ``state`` (a string or a State subclass)."""
    if isinstance(state, str):
        return state
    if isinstance(state, type) and issubclass(state, State):
        return state._state_name
    raise TypeError(f"expected a state name or State subclass, got {state!r}")


def on_event(*event_types: type, state: Optional[str] = None) -> Callable:
    """Register the decorated method as the handler for ``event_types``.

    Inside a :class:`State` body the enclosing state is implied and ``state``
    must not be given.  On a machine body, ``state`` scopes the handler to one
    named state; without it the handler applies in any state that does not
    resolve the event itself.
    """
    if not event_types:
        raise TypeError("on_event requires at least one event type")

    def decorator(func: Callable) -> Callable:
        registrations = list(getattr(func, _HANDLER_ATTR, []))
        for event_type in event_types:
            registrations.append((event_type, state if state is not None else ANY_STATE))
        setattr(func, _HANDLER_ATTR, registrations)
        return func

    return decorator


def on_entry(state: str) -> Callable:
    """Register the decorated method as the entry action of ``state``."""

    def decorator(func: Callable) -> Callable:
        states = list(getattr(func, _ENTRY_ATTR, []))
        states.append(state)
        setattr(func, _ENTRY_ATTR, states)
        return func

    return decorator


def on_exit(state: str) -> Callable:
    """Register the decorated method as the exit action of ``state``."""

    def decorator(func: Callable) -> Callable:
        states = list(getattr(func, _EXIT_ATTR, []))
        states.append(state)
        setattr(func, _EXIT_ATTR, states)
        return func

    return decorator


@dataclass
class HandlerInfo:
    """A single (state, event-type) -> method binding."""

    method_name: str
    event_type: type
    state: str
    wants_event: bool


class StateContext:
    """Event classification for one configuration of the state stack.

    A machine's runnability and dequeue selection depend on its *effective*
    event disciplines: the state stack is consulted top-down, and within each
    state the most-derived declaration for the event's type wins (handler,
    ``deferred`` or ``ignored`` — whichever names the closest base in the
    event's MRO).  A state that says nothing about an event passes it down
    the stack (P#'s handler inheritance through pushed states); wildcard
    machine-level handlers are the final fallback.

    Contexts are built and cached per stack tuple by
    :meth:`StateMachineSpec.context_for` and shared across machine instances
    of the same class, so classification of a given event type in a given
    stack costs one dict lookup after the first resolution.
    """

    __slots__ = ("spec", "stack", "plain", "actions")

    def __init__(self, spec: "StateMachineSpec", stack: Tuple[str, ...]) -> None:
        self.spec = spec
        self.stack = stack
        #: memoized ``event_type -> HandlerInfo | DEFER | IGNORE | None``.
        self.actions: dict = {}
        #: True when no state in the stack declares disciplines, i.e. every
        #: inbox event is dequeuable and the runtime may use the plain
        #: ``popleft`` fast path.
        self.plain = not any(
            spec.deferred.get(state) or spec.ignored.get(state) for state in stack
        )

    def resolve(self, event_type: type):
        """Classify ``event_type`` under this stack; memoized."""
        action = None
        # Runtime-control events (Halt, StartEvent) are never governed by
        # user disciplines: deferring or ignoring them would wedge the
        # machine's lifecycle, so they always dequeue.
        if not _is_control_event(event_type):
            deferred = self.spec.deferred
            ignored = self.spec.ignored
            handlers = self.spec.handlers
            for state in reversed(self.stack):
                state_deferred = deferred.get(state)
                state_ignored = ignored.get(state)
                for base in event_type.__mro__:
                    info = handlers.get((state, base))
                    if info is not None:
                        action = info
                        break
                    if state_deferred is not None and base in state_deferred:
                        action = DEFER
                        break
                    if state_ignored is not None and base in state_ignored:
                        action = IGNORE
                        break
                if action is not None:
                    break
            if action is None:
                for base in event_type.__mro__:
                    info = handlers.get((ANY_STATE, base))
                    if info is not None:
                        action = info
                        break
        self.actions[event_type] = action
        return action

    def handler_only(self, event_type: type) -> Optional[HandlerInfo]:
        """Resolve a handler ignoring disciplines (used for raised events)."""
        handlers = self.spec.handlers
        for state in reversed(self.stack):
            for base in event_type.__mro__:
                info = handlers.get((state, base))
                if info is not None:
                    return info
        for base in event_type.__mro__:
            info = handlers.get((ANY_STATE, base))
            if info is not None:
                return info
        return None

    def dequeuable(self, event_type: type) -> bool:
        """Whether an event of ``event_type`` can be dequeued in this stack.

        Deferred events are invisible to dequeue; ignored events do not make
        the machine runnable either (they are dropped lazily, while scanning
        past them towards a dequeuable event).  Unhandled events *are*
        dequeuable — consuming them raises the unhandled-event bug or drops
        them under ``ignore_unhandled_events``, either way making progress.
        """
        action = self.actions.get(event_type, _UNRESOLVED)
        if action is _UNRESOLVED:
            action = self.resolve(event_type)
        return action is not DEFER and action is not IGNORE

    def any_dequeuable(self, inbox: Iterable) -> bool:
        """Whether at least one event in ``inbox`` is dequeuable."""
        actions = self.actions
        for event in inbox:
            event_type = type(event)
            action = actions.get(event_type, _UNRESOLVED)
            if action is _UNRESOLVED:
                action = self.resolve(event_type)
            if action is not DEFER and action is not IGNORE:
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<StateContext {self.spec.owner_name} stack={self.stack!r}>"


#: Private marker distinguishing "not yet resolved" from a cached ``None``.
_UNRESOLVED = _Discipline("UNRESOLVED")


def is_control_event(event_type: type) -> bool:
    """True for framework control events (``Halt``/``StartEvent``).

    Control events are always dequeuable — they bypass the defer/ignore
    disciplines — so tooling that reasons about handleability (notably
    :mod:`repro.analysis`) must treat them specially, exactly as the
    dispatch path in :class:`StateContext` does.
    """
    from .events import Halt, StartEvent  # late import: events has no deps on us

    return issubclass(event_type, (Halt, StartEvent))


#: Backwards-compatible private alias (pre-analysis-package name).
_is_control_event = is_control_event


@dataclass
class StateMachineSpec:
    """Static description of a machine or monitor class.

    ``handlers`` maps ``(state, event_type)`` to :class:`HandlerInfo`;
    ``entry_actions``/``exit_actions`` map state name to method name;
    ``deferred``/``ignored`` map state name to a frozenset of event types;
    ``initial_state`` is the DSL-declared start state (None when the class
    only uses the legacy ``initial_state`` string attribute).
    """

    owner_name: str
    handlers: dict = field(default_factory=dict)
    entry_actions: dict = field(default_factory=dict)
    exit_actions: dict = field(default_factory=dict)
    deferred: dict = field(default_factory=dict)
    ignored: dict = field(default_factory=dict)
    initial_state: Optional[str] = None
    #: DSL State subclasses by state name (empty for legacy-form classes).
    state_classes: dict = field(default_factory=dict)
    #: states declared hot via ``class X(State, hot=True)`` (monitors only).
    hot_states: frozenset = frozenset()
    #: memoized ``(state, event_type) -> Optional[HandlerInfo]`` resolutions;
    #: dispatch is a hot path, and resolution (wildcard states, base-class
    #: matches) is pure, so every answer — including "no handler" — is cached.
    _resolution_cache: dict = field(default_factory=dict, repr=False, compare=False)
    #: memoized ``stack tuple -> StateContext``, shared across instances.
    _context_cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def states(self) -> set:
        found = set()
        for state, _event_type in self.handlers:
            if state != ANY_STATE:
                found.add(state)
        found.update(self.entry_actions)
        found.update(self.exit_actions)
        found.update(self.deferred)
        found.update(self.ignored)
        found.update(self.state_classes)
        if self.initial_state is not None:
            found.add(self.initial_state)
        return found

    @property
    def action_handler_count(self) -> int:
        """Number of distinct action handlers (event handlers + entry/exit)."""
        methods = {info.method_name for info in self.handlers.values()}
        methods.update(self.entry_actions.values())
        methods.update(self.exit_actions.values())
        return len(methods)

    @property
    def deferred_event_count(self) -> int:
        """Total (state, deferred event type) declarations (Table 1 column)."""
        return sum(len(types) for types in self.deferred.values())

    @property
    def ignored_event_count(self) -> int:
        """Total (state, ignored event type) declarations (Table 1 column)."""
        return sum(len(types) for types in self.ignored.values())

    def context_for(self, stack: Tuple[str, ...]) -> StateContext:
        """The (cached) :class:`StateContext` for one state-stack tuple."""
        context = self._context_cache.get(stack)
        if context is None:
            context = StateContext(self, stack)
            self._context_cache[stack] = context
        return context

    def handler_for(self, state: str, event_type: type) -> Optional[HandlerInfo]:
        """Resolve the handler for ``event_type`` while in ``state``.

        Resolution walks the event type's MRO most-derived-first, preferring
        ``state``-specific bindings over wildcard-state bindings for the same
        base: a state's own handlers — however general their event type —
        beat machine-wide defaults.  Results are memoized per
        ``(state, event_type)`` pair.

        This is the single-state, discipline-free view used by the seed
        reference runtime (:mod:`repro.core._baseline`) and by tests;
        machine/monitor dispatch resolves through :meth:`context_for`, whose
        :class:`StateContext` applies the same per-state precedence while
        also consulting the state stack and the defer/ignore disciplines.
        Keep the two in sync when changing precedence.
        """
        key = (state, event_type)
        try:
            return self._resolution_cache[key]
        except KeyError:
            pass
        info = self._resolve_handler(state, event_type)
        self._resolution_cache[key] = info
        return info

    def _resolve_handler(self, state: str, event_type: type) -> Optional[HandlerInfo]:
        # Deterministic resolution: for each candidate state (specific first,
        # wildcard second) prefer the most-derived matching event type — the
        # binding whose type is closest in the event's MRO — independent of
        # handler registration order.
        handlers = self.handlers
        for candidate_state in (state, ANY_STATE):
            for base in event_type.__mro__:
                info = handlers.get((candidate_state, base))
                if info is not None:
                    return info
        return None


def _wants_event(func: Callable) -> bool:
    parameters = [
        p
        for p in inspect.signature(func).parameters.values()
        if p.name != "self" and p.kind not in (p.VAR_KEYWORD, p.VAR_POSITIONAL)
    ]
    return len(parameters) >= 1


def _iter_state_functions(state_cls: type):
    """Every function defined on ``state_cls`` or its State bases, base-first."""
    for klass in reversed(state_cls.__mro__):
        if klass in (object, State):
            continue
        yield from vars(klass).items()


def _collect_state(spec: StateMachineSpec, owner: type, state_cls: type) -> None:
    """Lower one nested State declaration into ``spec``.

    Handler/entry/exit functions are hoisted onto the owner class under
    mangled attribute names, so dispatch binds them exactly like legacy
    handlers (``getattr(machine, method_name)``) and the runtime's
    bound-method cache keeps working unchanged.
    """
    state_name = state_cls._state_name
    spec.state_classes[state_name] = state_cls

    for tuple_name in ("deferred", "ignored"):
        for event_type in getattr(state_cls, tuple_name):
            if not isinstance(event_type, type):
                raise TypeError(
                    f"{owner.__name__}.{state_cls.__name__}: {tuple_name} entries "
                    f"must be event types, got {event_type!r}"
                )
    deferred = frozenset(state_cls.deferred)
    ignored = frozenset(state_cls.ignored)
    if deferred & ignored:
        overlap = ", ".join(sorted(t.__name__ for t in deferred & ignored))
        raise TypeError(
            f"{owner.__name__}.{state_cls.__name__}: {overlap} declared both "
            f"deferred and ignored"
        )
    # Assign-or-clear rather than merge: a subclass redeclaring a state of
    # the same name replaces its disciplines wholesale.
    if deferred:
        spec.deferred[state_name] = deferred
    else:
        spec.deferred.pop(state_name, None)
    if ignored:
        spec.ignored[state_name] = ignored
    else:
        spec.ignored.pop(state_name, None)

    hoisted = owner.__dict__[_HOISTED_ATTR]

    for attr_name, attr in _iter_state_functions(state_cls):
        if isinstance(attr, type) and issubclass(attr, State):
            # Catch a mis-indented sibling state before it silently vanishes.
            raise TypeError(
                f"{owner.__name__}.{state_cls.__name__}.{attr_name}: states do "
                f"not nest — declare every State directly on the machine body"
            )
        if not callable(attr):
            continue
        if getattr(attr, _ENTRY_ATTR, None) or getattr(attr, _EXIT_ATTR, None):
            raise TypeError(
                f"{owner.__name__}.{state_cls.__name__}.{attr_name}: inside a "
                f"State body declare entry/exit actions as plain on_entry/"
                f"on_exit methods, not with @on_entry/@on_exit"
            )
        registrations = getattr(attr, _HANDLER_ATTR, [])
        if (
            not registrations
            and attr_name not in ("on_entry", "on_exit")
            and inspect.isfunction(attr)
            and not attr_name.startswith("__")
        ):
            # A plain method in a State body would silently never be hoisted
            # onto the machine; fail at declaration time instead of with an
            # AttributeError at dispatch time.
            raise TypeError(
                f"{owner.__name__}.{state_cls.__name__}.{attr_name}: State "
                f"bodies may only declare @on_event handlers and on_entry/"
                f"on_exit actions; define helper methods on the machine class"
            )
        mangled = f"_state_{state_name}_{attr_name}"
        hoisted.add(mangled)
        for event_type, declared_state in registrations:
            if declared_state != ANY_STATE:
                raise TypeError(
                    f"{owner.__name__}.{state_cls.__name__}.{attr_name}: handlers "
                    f"inside a State body must not pass state= (the enclosing "
                    f"state is implied)"
                )
            if event_type in deferred or event_type in ignored:
                discipline = "deferred" if event_type in deferred else "ignored"
                raise TypeError(
                    f"{owner.__name__}.{state_cls.__name__}: {event_type.__name__} "
                    f"is both {discipline} and handled by {attr_name}"
                )
            setattr(owner, mangled, attr)
            spec.handlers[(state_name, event_type)] = HandlerInfo(
                method_name=mangled,
                event_type=event_type,
                state=state_name,
                wants_event=_wants_event(attr),
            )
        if attr_name == "on_entry":
            setattr(owner, mangled, attr)
            spec.entry_actions[state_name] = mangled
        elif attr_name == "on_exit":
            setattr(owner, mangled, attr)
            spec.exit_actions[state_name] = mangled

    if state_cls._state_hot:
        spec.hot_states = spec.hot_states | {state_name}


def build_spec(cls: type) -> StateMachineSpec:
    """Collect the declaration metadata of ``cls`` and its bases.

    Both forms lower here: legacy ``@on_event(state=...)`` decorators on the
    class body and nested :class:`State` subclasses.  Later (more derived)
    declarations override earlier ones binding the same (state, event type).
    """
    spec = StateMachineSpec(owner_name=cls.__name__)
    # Names hoisted onto ancestor classes by *their* spec builds...
    hoisted_names: set = set()
    for klass in cls.__mro__[1:]:
        hoisted_names.update(vars(klass).get(_HOISTED_ATTR, ()))
    # ...plus the live set for ``cls`` itself: _collect_state adds to it as
    # states found in *base* classes hoist onto ``cls`` during this very
    # walk, and those copies must not be re-scanned when the walk reaches
    # ``cls``'s own dict (their @on_event metadata would re-register them as
    # wildcard handlers — and make the spec depend on spec-build order).
    hoisted_live = cls.__dict__.get(_HOISTED_ATTR)
    if hoisted_live is None:
        hoisted_live = set()
        setattr(cls, _HOISTED_ATTR, hoisted_live)
    for klass in reversed(cls.__mro__):
        initial_here = []
        names_here: dict = {}
        # _collect_state hoists handler functions onto ``cls`` while we walk
        # its MRO, so iterate over a snapshot of each class dict.
        for attr_name, attr in list(vars(klass).items()):
            if attr_name in hoisted_names or attr_name in hoisted_live:
                continue
            if isinstance(attr, type) and issubclass(attr, State) and attr is not State:
                duplicate = names_here.get(attr._state_name)
                if duplicate is not None:
                    raise TypeError(
                        f"{klass.__name__}: duplicate state name "
                        f"{attr._state_name!r} ({duplicate.__name__} and {attr.__name__})"
                    )
                names_here[attr._state_name] = attr
                _collect_state(spec, cls, attr)
                if attr._state_initial:
                    initial_here.append(attr._state_name)
                continue
            if not callable(attr):
                continue
            for event_type, state in getattr(attr, _HANDLER_ATTR, []):
                spec.handlers[(state, event_type)] = HandlerInfo(
                    method_name=attr_name,
                    event_type=event_type,
                    state=state,
                    wants_event=_wants_event(attr),
                )
            for state in getattr(attr, _ENTRY_ATTR, []):
                spec.entry_actions[state] = attr_name
            for state in getattr(attr, _EXIT_ATTR, []):
                spec.exit_actions[state] = attr_name
        if len(initial_here) > 1:
            raise TypeError(
                f"{klass.__name__}: more than one initial state declared "
                f"({', '.join(sorted(initial_here))})"
            )
        if initial_here:
            spec.initial_state = initial_here[0]
    # Cross-form conflict check: a legacy ``@on_event(state="S")`` handler
    # and a DSL state S deferring/ignoring the same exact event type are
    # contradictory, just like the in-body case _collect_state rejects.
    for discipline_name, table in (("deferred", spec.deferred), ("ignored", spec.ignored)):
        for state_name, event_types in table.items():
            for event_type in event_types:
                info = spec.handlers.get((state_name, event_type))
                if info is not None:
                    raise TypeError(
                        f"{cls.__name__}: {event_type.__name__} in state "
                        f"{state_name!r} is both {discipline_name} and handled "
                        f"by {info.method_name}"
                    )
    return spec


def iter_handled_event_types(spec: StateMachineSpec) -> Iterable[type]:
    seen = set()
    for (_state, event_type) in spec.handlers:
        if event_type not in seen:
            seen.add(event_type)
            yield event_type
