"""Model statistics: the raw material of Table 1.

Table 1 of the paper reports, per case study, the size of the system-under-
test, the size of the P# test harness, and three structural measures of the
harness: number of machines (#M), number of state transitions (#ST) and
number of action handlers (#AH).  This module computes the same measures for
the Python harnesses in this repository by inspecting the declared machine and
monitor classes and counting source lines of the involved modules.  With the
State DSL the spec also exposes per-state event disciplines, so the rows
additionally count declared states (#S), deferred-event declarations (#DE)
and ignored-event declarations (#IE) — modeling cost the flat string-state
form hid inside hand-rolled bookkeeping.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from .declarations import ANY_STATE
from .machine import Machine
from .monitors import Monitor


def count_source_lines(modules: Iterable) -> int:
    """Count non-blank, non-comment source lines across ``modules``."""
    total = 0
    for module in modules:
        source = inspect.getsource(module)
        for line in source.splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                total += 1
    return total


def _declared_states(cls: type) -> set:
    spec = cls.spec()
    states = set(spec.states)
    # The DSL-declared initial state supersedes the legacy class attribute;
    # counting the latter would charge DSL machines a phantom "init" state.
    if spec.initial_state is None:
        states.add(cls.initial_state)
    return states


def count_state_transitions(machine_classes: Sequence[type]) -> int:
    """Count declared state transitions across harness machine/monitor classes.

    A transition is counted for every (state, event-type) handler binding that
    is declared on a specific state, plus one per declared state for its entry
    point — mirroring how P# counts ``goto`` transitions in its statistics.
    """
    transitions = 0
    for cls in machine_classes:
        spec = cls.spec()
        for (state, _event_type) in spec.handlers:
            if state != ANY_STATE:
                transitions += 1
        transitions += max(0, len(_declared_states(cls)) - 1)
    return transitions


def count_action_handlers(machine_classes: Sequence[type]) -> int:
    """Count distinct action handlers (event handlers + entry/exit actions)."""
    return sum(cls.spec().action_handler_count for cls in machine_classes)


def count_states(machine_classes: Sequence[type]) -> int:
    """Count declared states (DSL State classes and legacy string states)."""
    return sum(len(_declared_states(cls)) for cls in machine_classes)


def count_deferred_events(machine_classes: Sequence[type]) -> int:
    """Count (state, deferred event type) declarations across the harness."""
    return sum(cls.spec().deferred_event_count for cls in machine_classes)


def count_ignored_events(machine_classes: Sequence[type]) -> int:
    """Count (state, ignored event type) declarations across the harness."""
    return sum(cls.spec().ignored_event_count for cls in machine_classes)


@dataclass
class HarnessStatistics:
    """The Table 1 row computed for one case study."""

    name: str
    system_loc: int
    harness_loc: int
    num_machines: int
    num_state_transitions: int
    num_action_handlers: int
    bugs_found: int = 0
    num_states: int = 0
    num_deferred_events: int = 0
    num_ignored_events: int = 0

    def as_row(self) -> dict:
        return {
            "system": self.name,
            "system_loc": self.system_loc,
            "bugs": self.bugs_found,
            "harness_loc": self.harness_loc,
            "machines": self.num_machines,
            "states": self.num_states,
            "state_transitions": self.num_state_transitions,
            "action_handlers": self.num_action_handlers,
            "deferred_events": self.num_deferred_events,
            "ignored_events": self.num_ignored_events,
        }


def aggregate_statistics(rows: Sequence[HarnessStatistics]) -> dict:
    """Sum the numeric columns of several Table 1 rows into a totals row.

    Used to aggregate per-case-study (or per-portfolio-worker) statistics
    into one overview row; the ``system`` column lists the merged names.
    The column set is taken from :meth:`HarnessStatistics.as_row`, so the
    two stay in sync by construction.
    """
    dicts = [row.as_row() for row in rows]
    numeric_keys = [key for key in (dicts[0] if dicts else {}) if key != "system"]
    total = {"system": "+".join(entry["system"] for entry in dicts)}
    for key in numeric_keys:
        total[key] = sum(entry[key] for entry in dicts)
    return total


@dataclass
class HarnessDescription:
    """Inputs needed to compute a :class:`HarnessStatistics` row."""

    name: str
    system_modules: List = field(default_factory=list)
    harness_modules: List = field(default_factory=list)
    machine_classes: List[type] = field(default_factory=list)
    bugs_found: int = 0

    def compute(self) -> HarnessStatistics:
        for cls in self.machine_classes:
            if not (issubclass(cls, Machine) or issubclass(cls, Monitor)):
                raise TypeError(f"{cls!r} is neither a Machine nor a Monitor")
        return HarnessStatistics(
            name=self.name,
            system_loc=count_source_lines(self.system_modules),
            harness_loc=count_source_lines(self.harness_modules),
            num_machines=len(self.machine_classes),
            num_state_transitions=count_state_transitions(self.machine_classes),
            num_action_handlers=count_action_handlers(self.machine_classes),
            bugs_found=self.bugs_found,
            num_states=count_states(self.machine_classes),
            num_deferred_events=count_deferred_events(self.machine_classes),
            num_ignored_events=count_ignored_events(self.machine_classes),
        )
