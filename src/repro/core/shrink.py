"""Counterexample shrinking: delta-debugging minimization of bug traces.

A scheduling strategy that finds a bug hands back a
:class:`~repro.core.trace.ScheduleTrace` that is typically thousands of steps
long and mostly noise: random and PCT schedules wander through the state
space before stumbling into the violation.  The :class:`Shrinker` searches
for a much shorter trace that still reproduces the *same bug class*, so the
engineer replays a minimal counterexample instead of the raw run.

The search is a classic delta-debugging loop built on the *tolerant* guided
replay mode of :class:`~repro.core.strategy.replay.ReplayStrategy`: a
candidate trace guides the execution while it matches, and the first
divergence switches to a deterministic default schedule instead of crashing.
Every candidate execution is itself recorded, so whenever a candidate still
triggers the bug the *executed* trace — exact, strictly replayable — becomes
the new best counterexample.  Four passes run to a fixpoint:

* **suffix truncation** — keep only a prefix of the trace and let the
  deterministic default finish the execution;
* **machine projection** — remove every step belonging to one machine (its
  scheduling steps and the value choices it requested), the coordinated
  multi-step removal that single-step passes cannot discover;
* **chunk removal** — remove contiguous blocks of steps, halving the block
  size down to single steps (the ``ddmin`` family);
* **value simplification** — rewrite value choices toward their simplest
  form (booleans to ``False``, integers to ``0``).

A candidate is adopted only if its executed trace is strictly simpler
(shorter, or equally long with smaller value choices), so the loop always
terminates; a replay budget (``TestingConfig.shrink_max_replays``) bounds
the worst case.  Results carry :class:`ShrinkStats` — original/final length,
candidates tried, replays run — which serialize with the bug report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .config import TestingConfig
from .runtime import BugInfo, TestRuntime
from .strategy.replay import ReplayStrategy
from .trace import SCHEDULE, ScheduleTrace, TraceStep

#: The score of a candidate trace: (length, total weight of value choices).
#: Lexicographic comparison makes "strictly better" well-founded, which is
#: what guarantees the shrink loop terminates.
TraceScore = Tuple[int, int]


def trace_score(steps: Sequence[TraceStep]) -> TraceScore:
    """Lexicographic simplicity score of a trace: (length, value weight)."""
    weight = 0
    for step in steps:
        if step.kind != SCHEDULE:
            weight += abs(step.value)
    return (len(steps), weight)


@dataclass
class ShrinkStats:
    """Bookkeeping of one shrink run (serialized with the bug report)."""

    original_length: int
    final_length: int
    candidates_tried: int = 0
    replays_run: int = 0
    passes_completed: int = 0
    budget_exhausted: bool = False

    @property
    def reduction(self) -> float:
        """How many times shorter the shrunk trace is (1.0 = no reduction)."""
        if self.original_length == 0 or self.final_length == 0:
            return 1.0
        return self.original_length / self.final_length

    def summary(self) -> str:
        return (
            f"shrunk {self.original_length} -> {self.final_length} steps "
            f"({self.reduction:.1f}x) with {self.candidates_tried} candidates "
            f"and {self.replays_run} replays"
        )

    def to_dict(self) -> dict:
        return {
            "original_length": self.original_length,
            "final_length": self.final_length,
            "candidates_tried": self.candidates_tried,
            "replays_run": self.replays_run,
            "passes_completed": self.passes_completed,
            "budget_exhausted": self.budget_exhausted,
        }

    @staticmethod
    def from_dict(payload: dict) -> "ShrinkStats":
        return ShrinkStats(
            original_length=int(payload["original_length"]),
            final_length=int(payload["final_length"]),
            candidates_tried=int(payload.get("candidates_tried", 0)),
            replays_run=int(payload.get("replays_run", 0)),
            passes_completed=int(payload.get("passes_completed", 0)),
            budget_exhausted=bool(payload.get("budget_exhausted", False)),
        )


@dataclass
class ShrinkResult:
    """Outcome of shrinking one bug trace."""

    #: the minimized trace; exact (recorded from an actual execution), so it
    #: replays the bug in *strict* replay mode.
    trace: ScheduleTrace
    #: the bug the minimized trace reproduces (same ``kind`` as the original).
    bug: BugInfo
    stats: ShrinkStats

    @property
    def reduced(self) -> bool:
        return self.stats.final_length < self.stats.original_length


#: Prefix fractions tried by the suffix-truncation pass, shortest first (the
#: first adopted candidate is then the most aggressive cut that still works).
_TRUNCATION_FRACTIONS = (0.0, 1 / 16, 1 / 8, 1 / 4, 1 / 2, 3 / 4)


class Shrinker:
    """Delta-debugging driver minimizing one bug trace against a test entry.

    Args:
        test_entry: the test entry the bug was found in (a callable taking a
            fresh :class:`~repro.core.runtime.TestRuntime`).
        config: the :class:`TestingConfig` the bug was found under; candidate
            replays run with the same step bound and liveness settings, which
            is what keeps the reproduced bug in the same class.
        max_replays: candidate-replay budget; defaults to
            ``config.shrink_max_replays``.
        runtime_cls: runtime class used for candidate replays (overridable
            for the same reasons as in :class:`~repro.core.engine.TestingEngine`).
    """

    def __init__(
        self,
        test_entry: Callable,
        config: Optional[TestingConfig] = None,
        *,
        max_replays: Optional[int] = None,
        runtime_cls: type = TestRuntime,
    ) -> None:
        self.test_entry = test_entry
        self.config = config or TestingConfig()
        self.max_replays = (
            max_replays if max_replays is not None else self.config.shrink_max_replays
        )
        self.runtime_cls = runtime_cls

    # ------------------------------------------------------------------
    def shrink(self, bug: BugInfo) -> ShrinkResult:
        """Minimize ``bug``'s recorded trace; returns the best counterexample.

        The original bug is left untouched; use :meth:`shrink_bug` to also
        attach the result to it.
        """
        if bug.trace is None:
            raise ValueError("bug has no recorded trace to shrink")
        steps: List[TraceStep] = list(bug.trace.steps)
        stats = ShrinkStats(original_length=len(steps), final_length=len(steps))
        self._seen = {tuple(steps)}
        best_steps = steps
        best_bug = bug
        improved = True
        while improved and not self._exhausted(stats):
            improved = False
            for pass_fn in (
                self._pass_suffix_truncation,
                self._pass_machine_projection,
                self._pass_chunk_removal,
                self._pass_value_simplification,
            ):
                adopted = pass_fn(best_steps, bug.kind, stats)
                if adopted is not None:
                    best_bug = adopted
                    best_steps = list(adopted.trace.steps)
                    improved = True
            stats.passes_completed += 1
        stats.final_length = len(best_steps)
        trace = best_bug.trace if best_bug.trace is not None else bug.trace
        return ShrinkResult(trace=trace, bug=best_bug, stats=stats)

    def shrink_bug(self, bug: BugInfo) -> ShrinkResult:
        """Shrink ``bug`` and attach ``shrunk_trace``/``shrink`` to it."""
        result = self.shrink(bug)
        bug.shrunk_trace = result.trace
        bug.shrink = result.stats
        return result

    # ------------------------------------------------------------------
    # candidate evaluation
    # ------------------------------------------------------------------
    def _exhausted(self, stats: ShrinkStats) -> bool:
        if stats.replays_run >= self.max_replays:
            stats.budget_exhausted = True
            return True
        return False

    def _replay_candidate(self, steps: Sequence[TraceStep]) -> Optional[BugInfo]:
        """Tolerantly replay a candidate trace; returns the bug found, if any."""
        strategy = ReplayStrategy(ScheduleTrace(steps=list(steps)), tolerant=True)
        strategy.prepare_iteration(0)
        runtime = self.runtime_cls(strategy, self.config)
        return runtime.run(self.test_entry)

    def _try(
        self,
        candidate: Sequence[TraceStep],
        kind: str,
        best_score: TraceScore,
        stats: ShrinkStats,
    ) -> Optional[BugInfo]:
        """Replay ``candidate``; adopt it only if it reproduces the same bug
        class with a strictly simpler *executed* trace."""
        key = tuple(candidate)
        if key in self._seen:
            return None
        self._seen.add(key)
        stats.candidates_tried += 1
        if self._exhausted(stats):
            return None
        stats.replays_run += 1
        found = self._replay_candidate(candidate)
        if found is None or found.kind != kind or found.trace is None:
            return None
        if trace_score(found.trace.steps) >= best_score:
            return None
        # Mark the adopted *executed* trace as seen too: passes regenerate
        # candidates equal to the current best (stale machine sets, all-zero
        # value rewrites of an already-zero trace), and those can never pass
        # the strictly-better score test — don't spend budget replaying them.
        self._seen.add(tuple(found.trace.steps))
        return found

    # ------------------------------------------------------------------
    # passes
    # ------------------------------------------------------------------
    def _pass_suffix_truncation(
        self, steps: List[TraceStep], kind: str, stats: ShrinkStats
    ) -> Optional[BugInfo]:
        """Keep a prefix, let the deterministic default finish the run."""
        best_score = trace_score(steps)
        for fraction in _TRUNCATION_FRACTIONS:
            length = int(len(steps) * fraction)
            found = self._try(steps[:length], kind, best_score, stats)
            if found is not None:
                return found
            if self._exhausted(stats):
                return None
        return None

    def _pass_machine_projection(
        self, steps: List[TraceStep], kind: str, stats: ShrinkStats
    ) -> Optional[BugInfo]:
        """Remove every step belonging to one machine at a time.

        A schedule step carries the machine as its ``value``; a value step
        carries the requesting machine as its ``label`` (the same printable
        label the schedule step records).  Dropping both projects the whole
        machine's activity out of the trace in one candidate — the kind of
        coordinated removal (a send and its far-away handling, a whole retry
        loop) that chunk removal cannot find.
        """
        best = steps
        adopted: Optional[BugInfo] = None
        for value, label in sorted({
            (step.value, step.label) for step in best if step.kind == SCHEDULE
        }):
            candidate = [
                step
                for step in best
                if not (step.kind == SCHEDULE and step.value == value)
                and not (step.kind != SCHEDULE and step.label == label)
            ]
            found = self._try(candidate, kind, trace_score(best), stats)
            if found is not None:
                adopted = found
                best = list(found.trace.steps)
            if self._exhausted(stats):
                return adopted
        return adopted

    def _pass_chunk_removal(
        self, steps: List[TraceStep], kind: str, stats: ShrinkStats
    ) -> Optional[BugInfo]:
        """ddmin-style removal of contiguous chunks, halving the chunk size."""
        best = steps
        adopted: Optional[BugInfo] = None
        size = max(1, len(best) // 2)
        while size >= 1:
            start = 0
            while start < len(best):
                found = self._try(
                    best[:start] + best[start + size:], kind, trace_score(best), stats
                )
                if found is not None:
                    adopted = found
                    best = list(found.trace.steps)
                    # the list shifted under us: re-scan from the same offset,
                    # clamped to the new length by the loop condition.
                else:
                    start += size
                if self._exhausted(stats):
                    return adopted
            size //= 2
        return adopted

    def _pass_value_simplification(
        self, steps: List[TraceStep], kind: str, stats: ShrinkStats
    ) -> Optional[BugInfo]:
        """Rewrite value choices to their simplest form (False / 0)."""
        def zeroed(sequence: Sequence[TraceStep], only: Optional[int] = None) -> List[TraceStep]:
            out = []
            for index, step in enumerate(sequence):
                if step.kind != SCHEDULE and step.value != 0 and (only is None or only == index):
                    out.append(TraceStep(step.kind, 0, step.label))
                else:
                    out.append(step)
            return out

        best = steps
        adopted: Optional[BugInfo] = None
        # All at once first: one replay often nails every noise value.
        found = self._try(zeroed(best), kind, trace_score(best), stats)
        if found is not None:
            return found
        # Then one value step at a time.
        index = 0
        while index < len(best):
            step = best[index]
            if step.kind != SCHEDULE and step.value != 0:
                found = self._try(zeroed(best, only=index), kind, trace_score(best), stats)
                if found is not None:
                    adopted = found
                    best = list(found.trace.steps)
                if self._exhausted(stats):
                    return adopted
            index += 1
        return adopted


# ---------------------------------------------------------------------------
# convenience entry point
# ---------------------------------------------------------------------------
def shrink_bug(
    test_entry: Callable,
    bug: BugInfo,
    config: Optional[TestingConfig] = None,
    *,
    max_replays: Optional[int] = None,
) -> ShrinkResult:
    """Shrink ``bug`` against ``test_entry`` and attach the result to it."""
    return Shrinker(test_entry, config, max_replays=max_replays).shrink_bug(bug)
