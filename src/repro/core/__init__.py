"""Core systematic-testing framework (the P# analog).

The public surface of the framework:

* :class:`Machine`, :func:`on_event`, :func:`on_entry`, :func:`on_exit`,
  :class:`Receive` — the programming model for harness machines and wrapped
  components.
* :class:`Monitor` — safety and liveness (hot/cold) specification monitors.
* :class:`TestingEngine`, :func:`run_test`, :class:`TestingConfig` — the
  systematic testing entry points.
* Scheduling strategies: random, priority-based (PCT), round-robin, DFS,
  replay.
"""

from .config import TestingConfig
from .coverage import CoverageTracker
from .declarations import on_entry, on_event, on_exit
from .engine import TestingEngine, TestReport, run_test
from .errors import (
    BugError,
    DeadlockError,
    FrameworkError,
    LivenessViolationError,
    ReplayDivergenceError,
    SafetyViolationError,
    UnexpectedExceptionError,
    UnhandledEventError,
)
from .events import Event, Halt, Receive, StartEvent, TimerTick
from .ids import MachineId
from .machine import Machine
from .monitors import Monitor
from .runtime import BugInfo, TestRuntime
from .statistics import HarnessDescription, HarnessStatistics
from .strategy import (
    DFSStrategy,
    PCTStrategy,
    RandomStrategy,
    ReplayStrategy,
    RoundRobinStrategy,
    SchedulingStrategy,
    create_strategy,
)
from .timer import StartTimer, StopTimer, TimerMachine
from .trace import ScheduleTrace, TraceStep

__all__ = [
    "BugError",
    "BugInfo",
    "CoverageTracker",
    "DFSStrategy",
    "DeadlockError",
    "Event",
    "FrameworkError",
    "Halt",
    "HarnessDescription",
    "HarnessStatistics",
    "LivenessViolationError",
    "Machine",
    "MachineId",
    "Monitor",
    "PCTStrategy",
    "RandomStrategy",
    "Receive",
    "ReplayDivergenceError",
    "ReplayStrategy",
    "RoundRobinStrategy",
    "SafetyViolationError",
    "ScheduleTrace",
    "SchedulingStrategy",
    "StartEvent",
    "StartTimer",
    "StopTimer",
    "TestReport",
    "TestRuntime",
    "TestingConfig",
    "TestingEngine",
    "TimerMachine",
    "TimerTick",
    "TraceStep",
    "UnexpectedExceptionError",
    "UnhandledEventError",
    "create_strategy",
    "on_entry",
    "on_event",
    "on_exit",
    "run_test",
]
