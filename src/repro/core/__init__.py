"""Core systematic-testing framework (the P# analog).

The public surface of the framework:

* :class:`Machine`, :class:`State`, :func:`on_event`, :func:`on_entry`,
  :func:`on_exit`, :class:`Receive` — the programming model for harness
  machines and wrapped components: nested ``State`` declarations with
  defer/ignore disciplines and a push/pop state stack (the legacy
  string-state decorator form keeps working).
* :class:`Monitor` — safety and liveness (hot/cold) specification monitors.
* :class:`TestingEngine`, :func:`run_test`, :class:`TestingConfig` — the
  single-strategy systematic testing entry points.
* :func:`scenario` / :class:`TestCase` — the declarative scenario registry
  every case-study harness registers into.
* :class:`Portfolio` / :func:`run_scenario` — multi-strategy, multi-process
  portfolio runs over registered scenarios.
* :class:`ParallelExplorer` / :func:`explore_scenario` — prefix-partitioned
  parallel exhaustive search with work stealing and cross-process
  fingerprint sharing.
* Scheduling strategies: random, priority-based (PCT), round-robin, DFS,
  replay — an open set extended with :func:`register_strategy`.
"""

from .config import TestingConfig
from .coverage import CoverageTracker
from .declarations import DEFER, IGNORE, State, on_entry, on_event, on_exit
from .engine import TestingEngine, TestReport, run_test
from .parallel import (
    ClaimResult,
    ParallelExplorer,
    ParallelReport,
    SubtreeClaim,
    explore_scenario,
)
from .portfolio import (
    JobResult,
    Portfolio,
    PortfolioJob,
    PortfolioReport,
    merge_results,
    replay_bug,
    replay_trace,
    run_scenario,
)
from .registry import (
    TestCase,
    all_scenarios,
    get_scenario,
    load_builtin_scenarios,
    register,
    scenario,
)
from .errors import (
    BugError,
    DeadlockError,
    FrameworkError,
    LivenessViolationError,
    ReplayDivergenceError,
    SafetyViolationError,
    UnexpectedExceptionError,
    UnhandledEventError,
)
from .events import Event, Halt, Receive, StartEvent, TimerTick
from .ids import MachineId
from .machine import Machine
from .monitors import Monitor
from .runtime import BugInfo, ProductionRuntime, RuntimeKernel, TestRuntime
from .shrink import Shrinker, ShrinkResult, ShrinkStats, shrink_bug
from .statistics import HarnessDescription, HarnessStatistics, aggregate_statistics
from .strategy import (
    DFSStrategy,
    PCTStrategy,
    RandomStrategy,
    ReplayStrategy,
    RoundRobinStrategy,
    SchedulingStrategy,
    available_strategies,
    create_strategy,
    register_strategy,
)
from .timer import StartTimer, StopTimer, TimerMachine
from .trace import ScheduleTrace, TraceStep

__all__ = [
    "BugError",
    "BugInfo",
    "ClaimResult",
    "CoverageTracker",
    "DEFER",
    "DFSStrategy",
    "DeadlockError",
    "Event",
    "FrameworkError",
    "Halt",
    "HarnessDescription",
    "HarnessStatistics",
    "IGNORE",
    "JobResult",
    "LivenessViolationError",
    "Machine",
    "MachineId",
    "Monitor",
    "PCTStrategy",
    "ParallelExplorer",
    "ParallelReport",
    "Portfolio",
    "PortfolioJob",
    "PortfolioReport",
    "ProductionRuntime",
    "RandomStrategy",
    "Receive",
    "ReplayDivergenceError",
    "ReplayStrategy",
    "RoundRobinStrategy",
    "RuntimeKernel",
    "SafetyViolationError",
    "ScheduleTrace",
    "SchedulingStrategy",
    "ShrinkResult",
    "ShrinkStats",
    "Shrinker",
    "StartEvent",
    "State",
    "SubtreeClaim",
    "StartTimer",
    "StopTimer",
    "TestCase",
    "TestReport",
    "TestRuntime",
    "TestingConfig",
    "TestingEngine",
    "TimerMachine",
    "TimerTick",
    "TraceStep",
    "UnexpectedExceptionError",
    "UnhandledEventError",
    "aggregate_statistics",
    "all_scenarios",
    "available_strategies",
    "create_strategy",
    "explore_scenario",
    "get_scenario",
    "load_builtin_scenarios",
    "merge_results",
    "on_entry",
    "on_event",
    "on_exit",
    "register",
    "register_strategy",
    "replay_bug",
    "replay_trace",
    "run_scenario",
    "run_test",
    "scenario",
    "shrink_bug",
]
