"""Error and bug types raised by the systematic testing runtime.

The testing engine distinguishes *bugs* (violations of the user's
specification or unexpected crashes of the system-under-test, reported to the
user together with a reproducible trace) from *framework errors* (misuse of
the library itself, which always propagate).
"""

from __future__ import annotations


class FrameworkError(Exception):
    """Raised when the testing framework itself is misused.

    Framework errors are never treated as bugs of the system-under-test; they
    indicate a problem in how a machine, monitor or test was written.
    """


class ReplayDivergenceError(FrameworkError):
    """Raised when replaying a trace diverges from the recorded schedule."""


class BugError(Exception):
    """Base class for every specification violation found during testing."""

    kind = "bug"


class SafetyViolationError(BugError):
    """An assertion (local or in a safety monitor) failed."""

    kind = "safety"


class LivenessViolationError(BugError):
    """A liveness monitor remained in a hot state at the end of an execution
    that is considered infinite (it reached the configured step bound), or the
    system reached quiescence while a liveness monitor was still hot."""

    kind = "liveness"


class UnhandledEventError(BugError):
    """A machine received an event for which its current state declares no
    handler and the machine does not opt into ignoring unhandled events."""

    kind = "unhandled-event"


class UnexpectedExceptionError(BugError):
    """The system-under-test (or the harness) raised an unexpected exception
    while handling an event; the original exception is chained as the cause."""

    kind = "exception"


class DeadlockError(BugError):
    """No machine is enabled, yet at least one machine is blocked waiting to
    receive an event that can never arrive."""

    kind = "deadlock"
